"""Engine driver: executes a :class:`CGMProgram` round by round.

:class:`Engine` owns the driver loop shared by all backends; subclasses
only implement *where contexts and messages live between rounds*:

* :class:`InMemoryEngine` (here) keeps everything in Python objects — this
  is the reference CGM machine with unbounded memory;
* :class:`repro.core.seq_engine.SeqEMEngine` implements Algorithm 2
  (single-processor external-memory simulation);
* :class:`repro.core.par_engine.ParEMEngine` implements Algorithm 3
  (p-processor external-memory simulation);
* :class:`repro.core.vm_engine.VMEngine` replays the in-memory execution
  through an LRU pager (the Figure 3 "virtual memory" baseline).

The loop runs until every virtual processor's :meth:`CGMProgram.round`
returns True **and** no messages are in flight; messages sent in round r
are delivered in round r+1.

With ``balanced=True`` every communication round is routed through the
paper's Algorithm 1 (BalancedRouting): the engine splits each message into
word-level chunks in a first balanced h-relation, regroups them at
intermediate processors in an engine-internal *relay superstep*, and
reassembles original payloads at the final destination.  This doubles the
number of communication supersteps (Lemma 2) but bounds every physical
message into [h/v - (v-1)/2, h/v + (v-1)/2].
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.cgm.config import MachineConfig
from repro.cgm.message import Message
from repro.cgm.metrics import CostReport, RoundMetrics
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.util.rng import spawn_rngs
from repro.util.validation import ConfigurationError, PreemptedError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.faults.checkpoint import CheckpointManager
    from repro.faults.plan import FaultPlan
    from repro.tune.runtime import RuntimeConfig

#: hard guard against non-terminating programs.
MAX_ROUNDS = 10_000


@dataclass
class RunResult:
    """Outputs plus cost accounting of one engine execution."""

    outputs: list[Any]
    report: CostReport
    cfg: MachineConfig

    def output(self, pid: int) -> Any:
        return self.outputs[pid]


@dataclass
class RoundStep:
    """Accounting accumulated while executing one CGM round.

    Produced by :meth:`Engine._execute_round` (and, in the multi-process
    backend, merged from per-worker partial steps) and folded into a
    :class:`RoundMetrics` by the driver loop.
    """

    sent: list[int]              #: items sent, per virtual processor
    recv: list[int]              #: items received, per virtual processor
    per_real_wall: list[float]   #: round-callback wall time, per real proc
    messages: int = 0            #: point-to-point messages this round
    comm_items: int = 0          #: total items communicated
    cross_items: int = 0         #: items crossing real-processor boundaries
    all_done: bool = True        #: every executed processor returned True
    io: Any = None               #: IOStats delta of the round, or None

    @classmethod
    def empty(cls, v: int, p: int) -> "RoundStep":
        return cls(sent=[0] * v, recv=[0] * v, per_real_wall=[0.0] * p)


class Engine:
    """Template driver; subclasses provide the storage backend."""

    name = "abstract"
    #: backends whose between-round state can be snapshotted/restored set
    #: this True and implement ``_snapshot_backend``/``_restore_backend``.
    supports_checkpoint = False
    #: backends whose disk arrays accept a fault plan set this True.
    supports_faults = False

    def __init__(
        self,
        cfg: MachineConfig,
        balanced: bool = False,
        validate: bool = True,
        tracer: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.cfg = cfg
        self.balanced = balanced
        self.validate = validate
        self.constraint_warnings: list[str] = []
        #: trace recorder; defaults to the zero-cost disabled singleton.
        #: Call sites must guard on ``self.tracer.enabled`` so the disabled
        #: path never constructs an event payload.
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        #: metrics registry; same contract as the tracer — guard every
        #: emission on ``self.metrics.enabled``.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: resilience knobs, set post-construction (see repro.em.runner):
        #: the fault plan applied to the disk arrays, the checkpoint
        #: manager persisting round-boundary snapshots, and whether this
        #: run restores from the newest snapshot instead of setting up.
        self.faults: "FaultPlan | None" = None
        self.checkpoint: "CheckpointManager | None" = None
        self.resume = False
        #: per-run knob snapshot (repro.tune.runtime.RuntimeConfig), set
        #: post-construction by make_engine / the tuner; ``None`` means
        #: run() resolves the environment once at run start.  All knob
        #: consumption during a run goes through the snapshot, so flipping
        #: an env var mid-run (or between runs sharing this engine) can
        #: never half-apply.
        self.runtime: "RuntimeConfig | None" = None
        self._rt: "RuntimeConfig | None" = None
        #: last snapshot written this run (crash recovery re-reads it).
        self._last_ckpt: dict[str, Any] | None = None
        #: optional preemption probe, set post-construction (the job
        #: server's worker pool).  Polled at every round boundary *after*
        #: the checkpoint write; returning true aborts the run with
        #: :class:`~repro.util.validation.PreemptedError`, so with a
        #: checkpoint manager attached the run resumes bit-identically.
        self.preempt: "Callable[[], bool] | None" = None

    # ------------------------------------------------------------------ hooks

    def _start(self, program: CGMProgram) -> None:
        """Allocate backend structures before setup."""
        raise NotImplementedError

    def _store_context(self, pid: int, ctx: Context) -> None:
        raise NotImplementedError

    def _load_context(self, pid: int) -> Context:
        raise NotImplementedError

    def _put_messages(self, src_pid: int, msgs: list[Message]) -> None:
        """Persist *msgs* for the **next** superstep (write side)."""
        raise NotImplementedError

    def _take_inbox(self, pid: int) -> list[Message]:
        """Remove and return messages delivered to *pid* (read side)."""
        raise NotImplementedError

    def _flip(self) -> None:
        """Superstep barrier: make messages written this superstep readable.

        Superstep semantics require double buffering — a message sent in
        round r must not be visible to a processor simulated later in the
        same round.  On the EM backends this corresponds to the two
        alternating bands of the message matrix (Observation 2).
        """
        raise NotImplementedError

    def _pending_messages(self) -> bool:
        """Any messages awaiting delivery (read side, after a flip)?"""
        raise NotImplementedError

    def _round_boundary(self, r: int) -> None:
        """Called after each CGM round (superstep bookkeeping)."""

    def _begin_superstep(self, pids: "list[int]") -> None:
        """Called with the pid schedule before a round's compound-superstep
        loop.  Backends that overlap I/O with compute (the EM engines'
        double-buffered context prefetch) start their pipelines here; the
        default is a no-op."""

    def _end_superstep(self) -> None:
        """Called after the compound-superstep loop, including on error —
        pipelines started in :meth:`_begin_superstep` must drain here."""

    def _finalize(self, report: CostReport) -> None:
        """Fold backend counters into the report."""

    def _snapshot_backend(self) -> dict[str, Any]:
        """Canonical picklable snapshot of all between-round backend state."""
        raise NotImplementedError(f"{self.name} engine cannot checkpoint")

    def _restore_backend(self, backend: dict[str, Any]) -> None:
        """Inverse of :meth:`_snapshot_backend` (after :meth:`_start`)."""
        raise NotImplementedError(f"{self.name} engine cannot checkpoint")

    def _snapshot_state(self, rngs: list) -> dict[str, Any]:
        """Backend snapshot plus per-virtual-processor RNG states.

        The multi-process backend overrides this to gather both from its
        workers (the coordinator's own *rngs* never advance there).
        """
        return {
            "backend": self._snapshot_backend(),
            "rng_states": [g.bit_generator.state for g in rngs],
        }

    def _restore_state(self, snap: dict[str, Any], rngs: list) -> None:
        """Re-install a snapshot produced by :meth:`_snapshot_state`."""
        for g, state in zip(rngs, snap["rng_states"]):
            g.bit_generator.state = state
        self._restore_backend(snap["backend"])

    def _supersteps_per_round(self) -> int:
        """Real-machine supersteps consumed per CGM round."""
        return 1

    def _io_totals(self) -> "object | None":
        """Current aggregated :class:`IOStats` across real processors, or
        ``None`` for backends that issue no disk I/O.  Used for per-round
        I/O deltas (``RoundMetrics.io``) and superstep trace events."""
        return None

    def _local_pids(self) -> "range | list[int]":
        """Virtual processors simulated by *this* interpreter.

        All of them for in-process backends; a worker process of the
        multi-core backend overrides this with the pids of the real
        processors it owns.
        """
        return range(self.cfg.v)

    # ------------------------------------------------- per-round execution

    def _setup_contexts(self, program: CGMProgram, inputs: list[Any]) -> None:
        """Initialize and persist every virtual processor's context."""
        for pid in self._local_pids():
            ctx = Context()
            program.setup(ctx, pid, self.cfg, inputs[pid])
            self._store_context(pid, ctx)

    def _run_vproc(
        self,
        program: CGMProgram,
        r: int,
        pid: int,
        rng,
        step: RoundStep,
    ) -> None:
        """Simulate one virtual processor's compound superstep: load its
        context and inbox, run the program's round callback, persist the
        context and route the outbox — accumulating into *step*."""
        from repro.core import balanced as bal  # local import: avoid cycle

        cfg = self.cfg
        vpr = cfg.vprocs_per_real
        real = pid // vpr
        tr = self.tracer
        ctx = self._load_context(pid)
        raw_inbox = self._take_inbox(pid)
        if self.balanced and raw_inbox:
            inbox = bal.reassemble(raw_inbox)
        else:
            inbox = raw_inbox
        for m in inbox:
            step.recv[pid] += m.size_items
        env = RoundEnv(pid, cfg.v, r, cfg, inbox, rng)
        t0 = time.perf_counter()
        done = program.round(r, ctx, env)
        wall = time.perf_counter() - t0
        step.per_real_wall[real] += wall
        step.all_done &= bool(done)
        self._store_context(pid, ctx)

        outbox = env.outbox
        step.messages += len(outbox)
        for m in outbox:
            step.sent[pid] += m.size_items
            step.comm_items += m.size_items
            if (m.dest // vpr) != real:
                step.cross_items += m.size_items
                if tr.enabled:
                    tr.emit(
                        "network_transfer",
                        src=m.src,
                        dest=m.dest,
                        src_real=real,
                        dest_real=m.dest // vpr,
                        items=m.size_items,
                    )
        if tr.enabled:
            tr.emit(
                "compute_round",
                pid=pid,
                real=real,
                round=r,
                wall_s=wall,
                done=bool(done),
            )
        if self.balanced and outbox:
            outbox = bal.split_phase_a(outbox, cfg.v)
        self._put_messages(pid, outbox)

    def _execute_round(self, program: CGMProgram, r: int, rngs: list) -> RoundStep:
        """Run one full CGM round: every virtual processor's compound
        superstep, the superstep barrier, and (in balanced mode) the relay
        superstep.  The multi-process backend overrides this to fan the
        per-real-processor work out to worker processes."""
        cfg = self.cfg
        step = RoundStep.empty(cfg.v, cfg.p)
        io_before = self._io_totals()
        pids = list(self._local_pids())
        self._begin_superstep(pids)
        try:
            for pid in pids:
                self._run_vproc(program, r, pid, rngs[pid], step)
        finally:
            self._end_superstep()
        self._flip()
        if self.balanced:
            self._relay_superstep()
            self._flip()
        io_after = self._io_totals()
        if io_after is not None:
            step.io = (
                io_after.delta_since(io_before) if io_before else io_after.snapshot()
            )
        return step

    def _collect_outputs(self, program: CGMProgram) -> list[Any]:
        """Extract every virtual processor's output after the last round."""
        return [program.finish(self._load_context(pid)) for pid in self._local_pids()]

    # -------------------------------------------------------- checkpointing

    def _ckpt_meta(self, program: CGMProgram) -> dict[str, Any]:
        """Run fingerprint stored in every checkpoint header.

        Resume requires an exact match, so a snapshot can never silently
        continue under a different program, machine shape, routing mode or
        fault plan.  ``workers`` is deliberately excluded: the in-process
        and multi-process par backends simulate the identical machine
        (both are named ``par-em``), so snapshots are portable between
        them and across worker counts.
        """
        cfg = self.cfg
        return {
            "engine": self.name,
            "program": program.name,
            "balanced": self.balanced,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "cfg": {
                "N": cfg.N, "v": cfg.v, "p": cfg.p,
                "D": cfg.D, "B": cfg.B, "M": cfg.M, "seed": cfg.seed,
            },
        }

    def _write_checkpoint(
        self,
        program: CGMProgram,
        r: int,
        report: CostReport,
        rngs: list,
        finished: bool,
    ) -> None:
        cm = self.checkpoint
        if cm is None:
            return
        snap: dict[str, Any] = {"round": r, "finished": finished, "report": report}
        snap.update(self._snapshot_state(rngs))
        path = cm.save(r, snap, self._ckpt_meta(program))
        self._last_ckpt = snap
        if self.tracer.enabled:
            self.tracer.emit("checkpoint", round=r, finished=finished, path=path)

    def _resume_from_checkpoint(
        self, program: CGMProgram, rngs: list
    ) -> tuple[int, bool, CostReport]:
        """Restore the newest snapshot → (next round, finished, report)."""
        assert self.checkpoint is not None
        header, snap = self.checkpoint.load(self._ckpt_meta(program))
        self._restore_state(snap, rngs)
        self._last_ckpt = snap
        if self.tracer.enabled:
            self.tracer.emit(
                "resume",
                round=snap["round"],
                finished=snap["finished"],
                path=self.checkpoint.latest_path(),
            )
        return snap["round"] + 1, snap["finished"], snap["report"]

    # ------------------------------------------------------------------ driver

    def run(self, program: CGMProgram, inputs: list[Any]) -> RunResult:
        cfg = self.cfg
        v = cfg.v
        if len(inputs) != v:
            raise ConfigurationError(
                f"need one input slice per virtual processor: got {len(inputs)}, v={v}"
            )
        if not self.supports_checkpoint and (self.checkpoint is not None or self.resume):
            raise ConfigurationError(
                f"the {self.name!r} engine does not support checkpoint/resume "
                "(use the seq/par EM backends)"
            )
        if not self.supports_faults and self.faults is not None:
            raise ConfigurationError(
                f"the {self.name!r} engine does not support fault injection "
                "(use the seq/par EM backends)"
            )
        if self.resume and self.checkpoint is None:
            raise ConfigurationError("--resume requires a checkpoint directory")
        if self.validate:
            self.constraint_warnings = cfg.validate(kappa=program.kappa)

        rngs = spawn_rngs(cfg.seed, v)
        report = CostReport(engine=self.name)
        self._max_message_items = program.max_message_items(cfg)
        if self.runtime is not None:
            self._rt = self.runtime
        else:
            from repro.tune.runtime import current

            self._rt = current()
        self._start(program)
        mx = self.metrics
        labels = (
            dict(
                engine=self.name,
                algorithm=program.name,
                v=cfg.v,
                p=cfg.p,
                D=cfg.D,
                B=cfg.B,
            )
            if mx.enabled
            else {}
        )
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                "run_begin",
                engine=self.name,
                program=program.name,
                N=cfg.N,
                v=cfg.v,
                p=cfg.p,
                D=cfg.D,
                B=cfg.B,
                M=cfg.M,
                workers=cfg.workers,
                balanced=self.balanced,
            )

        self._last_ckpt = None
        finished = False
        if self.resume:
            r, finished, report = self._resume_from_checkpoint(program, rngs)
        else:
            r = 0
            self._setup_contexts(program, inputs)
            # an initial snapshot (round -1) makes even a crash in the
            # very first round recoverable
            self._write_checkpoint(program, -1, report, rngs, finished=False)

        while not finished:
            if tr.enabled:
                tr.emit("superstep_begin", superstep=report.supersteps, round=r)

            t_round = time.perf_counter()
            step = self._execute_round(program, r, rngs)
            round_wall_s = time.perf_counter() - t_round

            rm = RoundMetrics(r)
            rm.messages = step.messages
            rm.comm_items = step.comm_items
            rm.cross_items = step.cross_items
            rm.h_in = max(step.recv, default=0)
            rm.h_out = max(step.sent, default=0)
            rm.comp_wall_s = max(step.per_real_wall)
            if step.io is not None:
                rm.io = step.io
            all_done = step.all_done
            report.add_round(rm)
            report.supersteps += self._supersteps_per_round() * (2 if self.balanced else 1)
            if tr.enabled:
                tr.emit(
                    "superstep_end",
                    superstep=report.supersteps,
                    round=r,
                    h_in=rm.h_in,
                    h_out=rm.h_out,
                    parallel_ios=rm.io.parallel_ios,
                    blocks=rm.io.blocks_total,
                    width_hist=list(rm.io.width_histogram) or None,
                    wall_s=round_wall_s,
                )
            if mx.enabled:
                mx.counter(
                    "repro_rounds_total", "CGM rounds executed"
                ).labels(**labels).inc()
                mx.counter(
                    "repro_parallel_ios_total", "PDM parallel I/O operations"
                ).labels(**labels).inc(rm.io.parallel_ios)
                mx.counter(
                    "repro_blocks_total", "disk blocks moved"
                ).labels(**labels).inc(rm.io.blocks_total)
                mx.counter(
                    "repro_comm_items_total", "items communicated"
                ).labels(**labels).inc(rm.comm_items)
                mx.counter(
                    "repro_cross_items_total", "items over the real network"
                ).labels(**labels).inc(rm.cross_items)
                mx.timer(
                    "repro_compute_seconds", "measured round-callback wall time"
                ).labels(**labels).observe(rm.comp_wall_s)
                mx.highwater(
                    "repro_h_relation_max_items", "largest h-relation seen"
                ).labels(**labels).update(rm.h)
                mx.gauge(
                    "repro_superstep_parallel_ios",
                    "parallel I/Os per superstep group (one CGM round)",
                ).labels(**labels, superstep=report.supersteps, round=r).set(
                    rm.io.parallel_ios
                )
            self._round_boundary(r)
            finished = all_done and not self._pending_messages()
            self._write_checkpoint(program, r, report, rngs, finished)
            if not finished and self.preempt is not None and self.preempt():
                # the snapshot for round r is already on disk, so the
                # preempted run resumes bit-identically from round r + 1
                if tr.enabled:
                    tr.emit(
                        "preempt",
                        round=r,
                        resumable=self.checkpoint is not None,
                    )
                raise PreemptedError(
                    f"run preempted after round {r}"
                    + (
                        " (checkpointed; resume to continue)"
                        if self.checkpoint is not None
                        else " (no checkpoint directory — progress lost)"
                    )
                )
            r += 1
            if not finished and r > MAX_ROUNDS:
                raise SimulationError(
                    f"program {program.name!r} exceeded {MAX_ROUNDS} rounds — "
                    "missing termination?"
                )

        outputs = self._collect_outputs(program)
        self._finalize(report)
        if mx.enabled:
            mx.counter("repro_runs_total", "engine executions").labels(**labels).inc()
            mx.gauge(
                "repro_supersteps", "real-machine supersteps of the last run"
            ).labels(**labels).set(report.supersteps)
            mx.highwater(
                "repro_peak_memory_items", "peak internal-memory footprint"
            ).labels(**labels).update(report.peak_memory_items)
        if tr.enabled:
            tr.emit(
                "run_end",
                engine=self.name,
                rounds=report.rounds,
                supersteps=report.supersteps,
                parallel_ios=report.io.parallel_ios,
                cross_items=report.cross_items,
            )
        return RunResult(outputs, report, cfg)

    def _relay_superstep(self) -> None:
        """Balanced routing phase B: regroup chunks at intermediate procs.

        Engine-internal — no program code runs, no contexts are loaded.
        """
        from repro.core import balanced as bal

        for pid in self._local_pids():
            chunks = self._take_inbox(pid)
            if not chunks:
                continue
            forwarded = bal.regroup_phase_b(chunks, me=pid)
            self._put_messages(pid, forwarded)


class InMemoryEngine(Engine):
    """Reference backend: contexts and inboxes live in Python dicts.

    This is the "pure CGM" machine the paper's algorithms are designed
    for; the EM engines are differentially tested against it.
    """

    name = "in-memory"

    def _start(self, program: CGMProgram) -> None:
        self._contexts: dict[int, Context] = {}
        v = self.cfg.v
        self._ready: dict[int, list[Message]] = {pid: [] for pid in range(v)}
        self._staged: dict[int, list[Message]] = {pid: [] for pid in range(v)}

    def _store_context(self, pid: int, ctx: Context) -> None:
        self._contexts[pid] = ctx

    def _load_context(self, pid: int) -> Context:
        return self._contexts[pid]

    def _put_messages(self, src_pid: int, msgs: list[Message]) -> None:
        for m in msgs:
            self._staged[m.dest].append(m)

    def _take_inbox(self, pid: int) -> list[Message]:
        msgs = self._ready[pid]
        self._ready[pid] = []
        return msgs

    def _flip(self) -> None:
        # staged messages become deliverable; anything still unread in
        # `ready` was ignored by its recipient this round and is dropped,
        # matching superstep semantics (a message lives one superstep).
        for pid, staged in self._staged.items():
            if staged:
                self._ready[pid].extend(staged)
                self._staged[pid] = []

    def _pending_messages(self) -> bool:
        return any(self._ready.values())
