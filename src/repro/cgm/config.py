"""EM-CGM machine configuration and the paper's parameter constraints.

The EM-CGM model (paper, appendix 6.2) extends the CGM with per-processor
external memory: each of the ``p`` real processors has ``M`` items of
internal memory and ``D`` disks with block size ``B``; a parallel I/O moves
``D*B`` items at cost ``G``; communication costs ``g`` per item and every
superstep pays the synchronization latency ``L``.

``v`` is the number of *virtual* processors of the simulated CGM algorithm
(``p <= v``, ``p | v``).  The theorems hold only inside a parameter region;
:meth:`MachineConfig.constraint_report` evaluates every condition the paper
states so engines and benchmarks can enforce or display them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.util.validation import ConstraintViolation, require


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of an EM-CGM machine simulating a v-processor CGM.

    All sizes are in *items* (8-byte words).  Cost parameters follow the
    paper: ``g`` per item communicated, ``G`` per parallel I/O operation,
    ``L`` per superstep barrier.
    """

    N: int                  #: problem size in items
    v: int                  #: number of virtual (CGM) processors
    p: int = 1              #: number of real processors (p <= v, p | v)
    D: int = 1              #: disks per real processor
    B: int = 64             #: block size in items
    M: int | None = None    #: internal memory items per real processor
    g: float = 1.0          #: communication cost per item
    G: float = 1000.0       #: cost of one parallel I/O operation
    L: float = 100.0        #: synchronization cost per superstep
    seed: int = 0           #: RNG seed for randomized algorithms
    strict: bool = False    #: raise (vs warn) on constraint violations
    workers: int = 0        #: OS processes for the par backend (0 = in-process)

    def __post_init__(self) -> None:
        require(self.N >= 1, f"N must be positive, got {self.N}")
        require(self.workers >= 0, f"workers must be >= 0, got {self.workers}")
        require(self.v >= 1, f"v must be positive, got {self.v}")
        require(self.p >= 1, f"p must be positive, got {self.p}")
        require(self.p <= self.v, f"need p <= v, got p={self.p}, v={self.v}")
        require(
            self.v % self.p == 0,
            f"p must divide v (paper's exposition assumption), got v={self.v}, p={self.p}",
        )
        require(self.D >= 1, f"D must be positive, got {self.D}")
        require(self.B >= 1, f"B must be positive, got {self.B}")
        if self.M is None:
            object.__setattr__(self, "M", self.default_memory())
        require(
            self.M >= self.D * self.B,
            f"PDM requires M >= D*B (one block per disk in memory): "
            f"M={self.M}, D*B={self.D * self.B}",
        )

    # -- derived quantities --------------------------------------------------

    def default_memory(self) -> int:
        """A generous default M: four contexts' worth plus disk buffers.

        The simulation needs M = Theta(mu) with mu = Omega(N/v); a factor-4
        headroom accommodates algorithms whose contexts are a small
        constant multiple of their share of the input.
        """
        mu = -(-self.N // self.v)
        return max(8 * mu + 4 * self.D * self.B, 2 * self.D * self.B, 1024)

    @property
    def mu(self) -> int:
        """Nominal context size: one processor's share of the input."""
        return -(-self.N // self.v)

    @property
    def h(self) -> int:
        """Nominal h-relation size Theta(N/v)."""
        return -(-self.N // self.v)

    @property
    def vprocs_per_real(self) -> int:
        return self.v // self.p

    @property
    def max_balanced_message_items(self) -> int:
        """Lemma 2's bound on message size after balancing: 2*N/v^2."""
        return 2 * max(1, -(-self.N // (self.v * self.v)))

    def message_slot_blocks(self, max_message_items: int | None = None) -> int:
        """Disk blocks reserved per message slot in the staggered layout."""
        m = max_message_items or self.max_balanced_message_items
        return max(1, -(-m // self.B))

    # -- the paper's constraints ----------------------------------------------

    def constraint_report(self, kappa: float = 2.0) -> dict[str, dict[str, Any]]:
        """Evaluate every parameter condition the paper imposes.

        ``kappa`` is the per-algorithm slackness exponent (N >= v^kappa,
        kappa <= 3 for all problems in the paper).
        """
        N, v, p, D, B, M = self.N, self.v, self.p, self.D, self.B, self.M
        checks: dict[str, dict[str, Any]] = {}

        def add(name: str, ok: bool, detail: str) -> None:
            checks[name] = {"ok": bool(ok), "detail": detail}

        add(
            "N >= v*D*B (N = Omega(vDB), Thm 2/3)",
            N >= v * D * B,
            f"N={N}, v*D*B={v * D * B}",
        )
        balance_rhs = v * v * B + (v * v * (v - 1)) // 2
        add(
            "N >= v^2*B + v^2(v-1)/2 (Lemma 2, balancing)",
            N >= balance_rhs,
            f"N={N}, bound={balance_rhs}",
        )
        add(
            "B <= N/v^2 (Lemma 3 message slots hold >= 1 block)",
            B * v * v <= N,
            f"B={B}, N/v^2={N / (v * v):.1f}",
        )
        add(
            "M >= mu (context fits in internal memory)",
            M >= self.mu,
            f"M={M}, mu={self.mu}",
        )
        add(
            "N >= v^kappa (CGM slackness, kappa <= 3)",
            N >= v**kappa,
            f"N={N}, v^{kappa}={v**kappa:.0f}",
        )
        add(
            "M >= 2*D*B (PDM: 1 <= DB <= M/2)",
            M >= 2 * D * B,
            f"M={M}, 2*D*B={2 * D * B}",
        )
        add("p <= v and p | v", p <= v and v % p == 0, f"p={p}, v={v}")
        return checks

    def validate(self, kappa: float = 2.0, strict: bool | None = None) -> list[str]:
        """Check constraints; return the list of violated ones.

        Raises :class:`ConstraintViolation` in strict mode.
        """
        report = self.constraint_report(kappa)
        bad = [f"{k}: {d['detail']}" for k, d in report.items() if not d["ok"]]
        if bad and (self.strict if strict is None else strict):
            raise ConstraintViolation(
                "machine configuration violates paper constraints:\n  "
                + "\n  ".join(bad)
            )
        return bad

    # -- convenience ----------------------------------------------------------

    def with_(self, **kwargs: Any) -> "MachineConfig":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        return (
            f"EM-CGM(N={self.N}, v={self.v}, p={self.p}, D={self.D}, "
            f"B={self.B}, M={self.M}, g={self.g}, G={self.G}, L={self.L})"
        )
