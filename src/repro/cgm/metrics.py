"""Cost accounting: the BSP-style cost model of the paper (appendix 6.2/6.4).

Every engine produces a :class:`CostReport`.  Modeled time decomposes as

    T = t_comp + g * (communication volume) + G * (parallel I/Os) + L * X

where X is the number of supersteps executed on the *real* machine (the
sequential/parallel EM engines execute v/p compound supersteps per CGM
round, so X = lambda * v/p — Theorem 3's superstep blow-up is visible in
the report).  Computation time is measured as wall-clock time spent inside
the algorithm's round callbacks; on a p-processor target the engine takes
the per-superstep **max over real processors** so the report reflects
parallel, not summed, time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.pdm.io_stats import IOStats


@dataclass
class RoundMetrics:
    """Per-CGM-round accounting."""

    round_index: int
    h_in: int = 0            #: max items received by any virtual processor
    h_out: int = 0           #: max items sent by any virtual processor
    messages: int = 0        #: number of point-to-point messages
    comm_items: int = 0      #: total items communicated (all messages)
    cross_items: int = 0     #: items that crossed real-processor boundaries
    comp_wall_s: float = 0.0 #: parallel wall time of round callbacks
    io: IOStats = field(default_factory=IOStats)

    @property
    def h(self) -> int:
        return max(self.h_in, self.h_out)


@dataclass
class CostReport:
    """Whole-run accounting for one engine execution."""

    engine: str
    rounds: int = 0                 #: lambda — CGM rounds executed
    supersteps: int = 0             #: X — real-machine supersteps
    comp_wall_s: float = 0.0        #: parallel computation wall time
    comm_items: int = 0             #: total communicated items
    cross_items: int = 0            #: items over the real network
    h_history: list[int] = field(default_factory=list)
    io: IOStats = field(default_factory=IOStats)     #: summed over real procs
    io_max: IOStats = field(default_factory=IOStats) #: max over real procs
    peak_memory_items: int = 0
    page_faults: int = 0            #: VM engine only
    per_round: list[RoundMetrics] = field(default_factory=list)
    context_blocks_io: int = 0      #: blocks moved for context swapping
    message_blocks_io: int = 0      #: blocks moved for message traffic
    overflow_blocks: int = 0        #: staggered-slot overflows (see SeqEMEngine)
    #: physical-layer fault accounting (:class:`repro.faults.FaultStats`)
    #: when the run was fault-injected, else None.  Kept separate from
    #: ``io`` on purpose: the logical PDM counters above are bit-identical
    #: between clean and fault-injected runs.
    fault_stats: Any = None

    def add_round(self, m: RoundMetrics) -> None:
        self.rounds += 1
        self.comp_wall_s += m.comp_wall_s
        self.comm_items += m.comm_items
        self.cross_items += m.cross_items
        self.h_history.append(m.h)
        self.per_round.append(m)

    # -- modeled times ---------------------------------------------------------

    def t_comm(self, g: float, per_item: bool = True) -> float:
        """Modeled communication time: g per cross-network item."""
        return g * self.cross_items

    def t_io(self, G: float) -> float:
        """Modeled I/O time: G per parallel I/O (max over real procs —
        disks on different processors run concurrently)."""
        ios = self.io_max.parallel_ios or self.io.parallel_ios
        return G * ios

    def t_sync(self, L: float) -> float:
        return L * self.supersteps

    def modeled_time(self, g: float, G: float, L: float) -> float:
        """Total modeled time (excludes Python interpreter overhead: the
        computation term is the measured callback wall time)."""
        return self.comp_wall_s + self.t_comm(g) + self.t_io(G) + self.t_sync(L)

    def summary(self) -> str:
        return (
            f"[{self.engine}] rounds={self.rounds} supersteps={self.supersteps} "
            f"parallel_ios={self.io.parallel_ios} (max/proc {self.io_max.parallel_ios}) "
            f"blocks={self.io.blocks_total} comm_items={self.comm_items} "
            f"cross_items={self.cross_items} peak_mem={self.peak_memory_items} "
            f"faults={self.page_faults} comp_wall={self.comp_wall_s:.4f}s"
        )
