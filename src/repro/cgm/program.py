"""The API CGM algorithms are written against.

A :class:`CGMProgram` is a *superstep callback* object:

* :meth:`CGMProgram.setup` initializes each virtual processor's
  :class:`Context` from its slice of the input;
* :meth:`CGMProgram.round` performs one local-computation phase: it reads
  the messages delivered since the previous round (``env.incoming``), may
  send messages for the next round (``env.send``), and returns ``True``
  once this processor has finished;
* :meth:`CGMProgram.finish` extracts the processor's local output.

**All persistent state must live in the Context.**  Between rounds the
external-memory engines genuinely serialize contexts to the simulated
disks and reload them — state kept anywhere else will not survive.  The
in-memory engine deliberately round-trips nothing, which is exactly why
every algorithm is differentially tested on both.

The engine keeps calling :meth:`round` until *every* processor has
returned ``True`` **and** no messages are in flight, so a processor that
finishes early must keep returning ``True`` (and tolerate empty rounds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.cgm.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cgm.config import MachineConfig


class Context(dict):
    """Per-virtual-processor persistent store.

    A plain dict (string keys -> picklable/numpy values) so the EM engines
    can serialize it.  Attribute access is provided for readability:
    ``ctx.keys_`` style is avoided; use ``ctx["name"]``.
    """

    __slots__ = ()


class RoundEnv:
    """What a virtual processor sees during one round."""

    __slots__ = ("pid", "v", "round_index", "cfg", "incoming", "_outbox", "rng")

    def __init__(
        self,
        pid: int,
        v: int,
        round_index: int,
        cfg: "MachineConfig",
        incoming: list[Message],
        rng: np.random.Generator,
    ) -> None:
        self.pid = pid
        self.v = v
        self.round_index = round_index
        self.cfg = cfg
        self.incoming = incoming
        self.rng = rng
        self._outbox: list[Message] = []

    def send(self, dest: int, payload: Any, tag: str | None = None) -> None:
        """Queue *payload* for delivery to processor *dest* next round."""
        if not (0 <= dest < self.v):
            raise ValueError(f"destination {dest} out of range 0..{self.v - 1}")
        self._outbox.append(Message(self.pid, dest, payload, tag))

    def send_all(self, payload_by_dest: dict[int, Any], tag: str | None = None) -> None:
        """Queue one message per entry of *payload_by_dest*."""
        for dest, payload in payload_by_dest.items():
            self.send(dest, payload, tag)

    def messages(self, tag: str | None = None) -> list[Message]:
        """Incoming messages, optionally filtered by tag, sorted by source.

        Sorting by source makes algorithms independent of engine delivery
        order, which differs between backends.
        """
        msgs = [m for m in self.incoming if tag is None or m.tag == tag]
        return sorted(msgs, key=lambda m: (m.src, m.tag or ""))

    @property
    def outbox(self) -> list[Message]:
        return self._outbox


class CGMProgram:
    """Base class for CGM algorithms.

    Subclasses override :meth:`setup`, :meth:`round`, :meth:`finish` and
    may advertise a slackness exponent ``kappa`` (the paper's N >= v^kappa
    requirement) and a bound on their largest single message for the
    staggered disk layout.
    """

    #: paper's slackness requirement N >= v^kappa for this algorithm.
    kappa: float = 2.0

    #: human-readable name used in reports.
    name: str = "cgm-program"

    def setup(self, ctx: Context, pid: int, cfg: "MachineConfig", local_input: Any) -> None:
        """Initialize *ctx* from this processor's slice of the input."""
        raise NotImplementedError

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        """One compound superstep; return True when this processor is done."""
        raise NotImplementedError

    def finish(self, ctx: Context) -> Any:
        """Extract this processor's local output."""
        raise NotImplementedError

    def max_message_items(self, cfg: "MachineConfig") -> int:
        """Upper bound on any single message this program sends.

        Used to size the fixed message slots of the staggered disk layout
        (Figure 2).  The default is the CGM-generic bound h = N/v (one
        processor's whole communication volume in one message); programs
        with balanced traffic should override with ~2*N/v^2 to get the
        paper's tight layout.
        """
        return max(1, -(-cfg.N // cfg.v))


class FunctionalProgram(CGMProgram):
    """Adapter: build a small CGM program from plain functions.

    Handy in tests and examples::

        prog = FunctionalProgram(
            setup=lambda ctx, pid, cfg, x: ctx.update(data=x),
            rounds=[round0, round1],
            finish=lambda ctx: ctx["data"],
        )
    """

    def __init__(
        self,
        setup: Callable[[Context, int, "MachineConfig", Any], None],
        rounds: list[Callable[[Context, RoundEnv], None]],
        finish: Callable[[Context], Any],
        name: str = "functional",
        kappa: float = 1.0,
    ) -> None:
        self._setup = setup
        self._rounds = rounds
        self._finish = finish
        self.name = name
        self.kappa = kappa

    def setup(self, ctx: Context, pid: int, cfg: "MachineConfig", local_input: Any) -> None:
        self._setup(ctx, pid, cfg, local_input)

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r < len(self._rounds):
            self._rounds[r](ctx, env)
        return r + 1 >= len(self._rounds)

    def finish(self, ctx: Context) -> Any:
        return self._finish(ctx)
