"""Messages exchanged in a CGM communication round (an h-relation)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.items import item_count


@dataclass
class Message:
    """One point-to-point message of a communication superstep.

    ``size_items`` is the h-relation charge: the number of 8-byte items the
    payload occupies.  It is computed once at send time so engines on every
    backend account identically.
    """

    src: int
    dest: int
    payload: Any
    tag: str | None = None
    size_items: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.size_items < 0:
            self.size_items = item_count(self.payload)


def h_relation_size(messages: list[Message], v: int) -> int:
    """The h of an h-relation: max over processors of items sent/received."""
    sent = [0] * v
    received = [0] * v
    for m in messages:
        sent[m.src] += m.size_items
        received[m.dest] += m.size_items
    return max(max(sent, default=0), max(received, default=0))
