"""The CGM algorithm library (the problems of Figure 5).

Every algorithm is a :class:`repro.cgm.CGMProgram` — a superstep-structured
parallel program with Theta(N/v) local memory and O(1) or O(log v)
communication rounds — and therefore runs unmodified on the in-memory CGM
reference engine *and* on the external-memory simulation engines of
:mod:`repro.core`, where its communication becomes blocked, fully parallel
disk I/O.

Group A (fundamental): :mod:`repro.algorithms.sorting`,
:mod:`repro.algorithms.permutation`, :mod:`repro.algorithms.transpose`.

Group B (geometry/GIS): :mod:`repro.algorithms.geometry`.

Group C (graphs): :mod:`repro.algorithms.graphs`.

Shared communication patterns (broadcast, gather, prefix sums) live in
:mod:`repro.algorithms.collectives`.
"""

from repro.algorithms.permutation import CGMPermute
from repro.algorithms.sorting import SampleSort
from repro.algorithms.transpose import CGMTranspose

__all__ = ["CGMPermute", "SampleSort", "CGMTranspose"]
