"""CGMTranspose — one-round CGM matrix transpose.

Transposing a k x ell row-major matrix costs
Theta((N/DB) log_{M/B} min(M,k,ell,N/B)) I/Os in the general PDM; the
simulated CGM algorithm (Figure 5 Group A row 3) does O(N/(pDB)).

Distribution: the k x ell input is split into v contiguous row bands
(array_split over rows); the ell x k output likewise.  Round 0 routes each
local element, *as whole contiguous sub-tiles per destination*, to the
owner of its transposed row; round 1 assembles the local output band.
Like CGMPermute this is a special case of permutation but with the
destination arithmetic computed, not shipped: only (value, flat-output-
offset) pairs cross the network.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import bucket_by_dest, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv


class CGMTranspose(CGMProgram):
    """One-round CGM transpose of a k x ell matrix.

    Input per processor: its row band (2-D array) and the band's first
    global row index, as ``(band, row0, k, ell)``.
    """

    name = "cgm-transpose"
    kappa = 2.0

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        band, row0, k, ell = local_input
        ctx["pid"] = pid
        ctx["band"] = np.asarray(band)
        ctx["row0"] = int(row0)
        ctx["k"] = int(k)
        ctx["ell"] = int(ell)

    def max_message_items(self, cfg: MachineConfig) -> int:
        return 4 * max(1, -(-cfg.N // cfg.v))

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        pid, v = ctx["pid"], env.v
        k, ell = ctx["k"], ctx["ell"]
        if r == 0:
            band, row0 = ctx["band"], ctx["row0"]
            if band.size:
                rows_local, cols = band.shape
                # element (r0+r, c) -> output position (c, r0+r): flat
                # output index c*k + (r0 + r); owner = owner of output row c.
                rr, cc = np.meshgrid(
                    np.arange(rows_local, dtype=np.int64),
                    np.arange(cols, dtype=np.int64),
                    indexing="ij",
                )
                flat_out = cc.ravel() * k + (row0 + rr.ravel())
                # owner is determined by output *row* c under array_split
                # of the ell output rows:
                owners = owner_of_row(cc.ravel(), ell, v)
                pairs = np.column_stack((flat_out, band.ravel()))
                for dest, rows in bucket_by_dest(owners, pairs, v).items():
                    env.send(dest, rows, tag="tile")
            del ctx["band"]
            return False

        lo_row, hi_row = slice_bounds(ell, v, pid)
        out = np.zeros((hi_row - lo_row) * k, dtype=np.int64)
        base = lo_row * k
        for m in env.messages(tag="tile"):
            rows = m.payload
            if rows.size:
                out[rows[:, 0] - base] = rows[:, 1]
        ctx["out"] = out.reshape(hi_row - lo_row, k) if k else out.reshape(0, 0)
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["out"]


def owner_of_row(row: np.ndarray, n_rows: int, v: int) -> np.ndarray:
    """Owner processor of each output row under the array_split layout."""
    base, extra = divmod(n_rows, v)
    row = np.asarray(row, dtype=np.int64)
    cut = extra * (base + 1)
    if base == 0:
        return np.minimum(row, v - 1)
    return np.where(row < cut, row // (base + 1), extra + (row - cut) // base)
