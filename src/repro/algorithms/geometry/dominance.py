"""2D weighted dominance counting (Figure 5 Group B row 7).

For every point p, compute the total weight of points q with
q.x < p.x and q.y < p.y (strict, general position).  Exact O(1)-round
CGM algorithm:

* slab-partition by x (so "x smaller" decomposes into *within my slab*
  and *in a slab strictly left of mine*);
* **within slab** — a local sweep in x order with a Fenwick tree over
  local y-ranks;
* **cross slab, coarse** — y-space is cut into v buckets by sampled
  splitters; every slab broadcasts its per-bucket weight histogram
  (v^2 data in total), so each point can add up all full buckets below
  its own bucket across all slabs to its left;
* **cross slab, exact remainder** — points of y-bucket b are routed to
  *bucket owner* b, which sorts them by y and accumulates, per slab,
  the weight of same-bucket points with smaller y from slabs further
  left — resolving the one partially-counted bucket exactly.

The total is within-slab + full-bucket + same-bucket-remainder.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.geometry.slabs import SlabProgram, slab_of
from repro.cgm.program import Context, RoundEnv


class Fenwick:
    """Prefix-sum tree over ranks 0..n-1 (float weights)."""

    __slots__ = ("tree",)

    def __init__(self, n: int) -> None:
        self.tree = np.zeros(n + 1)

    def add(self, i: int, w: float) -> None:
        i += 1
        while i < self.tree.size:
            self.tree[i] += w
            i += i & (-i)

    def prefix(self, i: int) -> float:
        """Sum of ranks < i."""
        total = 0.0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total


class DominanceCount(SlabProgram):
    """Input rows: (x, y, weight, global-id).
    Output rows per slab: (id, dominated-weight)."""

    name = "dominance-count"

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        pts = self.gather_slab(env)
        ctx["pts"] = pts
        v = env.v
        # sample y to build global y-bucket splitters (reuse round trip
        # through processor 0)
        ys = pts[:, 1] if pts.size else np.zeros(0)
        n = ys.size
        if n:
            idx = (np.arange(v, dtype=np.int64) * n) // v
            sample = np.sort(ys)[np.minimum(idx, n - 1)]
        else:
            sample = ys[:0]
        env.send(0, sample, tag="ysample")
        ctx["phase"] = "ysplit"
        return False

    def phase_ysplit(self, ctx: Context, env: RoundEnv) -> bool:
        v = env.v
        if ctx["pid"] == 0:
            gathered = np.sort(
                np.concatenate([m.payload for m in env.messages(tag="ysample")])
            )
            m = gathered.size
            if m >= v and v > 1:
                idx = (np.arange(1, v, dtype=np.int64) * m) // v
                ysplit = gathered[idx]
            else:
                ysplit = gathered[:0]
            for dest in range(v):
                env.send(dest, ysplit, tag="ysplitters")
        ctx["phase"] = "histogram"
        return False

    def phase_histogram(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="ysplitters")
        ysplit = msg.payload
        ctx["ysplit"] = ysplit
        pts = ctx["pts"]
        v = env.v
        me = ctx["pid"]

        # local within-slab dominance by sweep + Fenwick over local y-rank
        local = np.zeros(pts.shape[0])
        if pts.shape[0]:
            y_rank = np.argsort(np.argsort(pts[:, 1], kind="stable"), kind="stable")
            order = np.argsort(pts[:, 0], kind="stable")
            fen = Fenwick(pts.shape[0])
            for i in order:
                local[i] = fen.prefix(int(y_rank[i]))
                fen.add(int(y_rank[i]), float(pts[i, 2]))
        ctx["local"] = local

        # per-bucket weight histogram, broadcast to everyone
        hist = np.zeros(v)
        if pts.shape[0]:
            buckets = slab_of(pts[:, 1], ysplit)
            np.add.at(hist, buckets, pts[:, 2])
            ctx["buckets"] = buckets
        else:
            ctx["buckets"] = np.zeros(0, dtype=np.int64)
        for dest in range(v):
            env.send(dest, np.concatenate(([float(me)], hist)), tag="hist")

        # route points to their y-bucket owner: (bucket-owner gets
        # (slab, y, weight, id) rows)
        if pts.shape[0]:
            buckets = ctx["buckets"]
            for b in range(v):
                sel = buckets == b
                if sel.any():
                    rows = np.column_stack(
                        (
                            np.full(sel.sum(), me, dtype=np.float64),
                            pts[sel, 1],
                            pts[sel, 2],
                            pts[sel, 3],
                        )
                    )
                    env.send(b, rows, tag="bucket")
        ctx["phase"] = "bucket_owner"
        return False

    def phase_bucket_owner(self, ctx: Context, env: RoundEnv) -> bool:
        v = env.v
        # assemble the v x v histogram table
        table = np.zeros((v, v))
        for m in env.messages(tag="hist"):
            row = m.payload
            table[int(row[0])] = row[1:]
        ctx["hist_table"] = table

        # same-bucket remainder: I own bucket `pid`; for each point in it,
        # sum weights of bucket points with smaller y from slabs further left
        msgs = env.messages(tag="bucket")
        if msgs:
            rows = np.vstack([m.payload for m in msgs])
            order = np.argsort(rows[:, 1], kind="stable")  # by y
            rows = rows[order]
            slab_weights = np.zeros(v)
            remainder = np.zeros(rows.shape[0])
            for k in range(rows.shape[0]):
                s = int(rows[k, 0])
                remainder[k] = slab_weights[:s].sum()
                slab_weights[s] += rows[k, 2]
            # send (id, remainder) back to the home slab
            for s in range(v):
                sel = rows[:, 0] == s
                if sel.any():
                    env.send(
                        s,
                        np.column_stack((rows[sel, 3], remainder[sel])),
                        tag="remainder",
                    )
        ctx["phase"] = "combine"
        return False

    def phase_combine(self, ctx: Context, env: RoundEnv) -> bool:
        pts = ctx["pts"]
        if pts.shape[0] == 0:
            ctx["result"] = np.zeros((0, 2))
            return True
        table = ctx["hist_table"]
        buckets = ctx["buckets"]
        me = ctx["pid"]
        # full buckets below mine, over slabs strictly left
        left = table[:me].sum(axis=0)          # per-bucket weight left of me
        cum = np.concatenate(([0.0], np.cumsum(left)))
        full = cum[buckets]                    # buckets strictly below mine
        rem = np.zeros(pts.shape[0])
        pos = {float(g): i for i, g in enumerate(pts[:, 3])}
        for m in env.messages(tag="remainder"):
            for gid, val in m.payload:
                rem[pos[float(gid)]] = val
        total = ctx["local"] + full + rem
        ctx["result"] = np.column_stack((pts[:, 3], total))
        return True

    def finish(self, ctx: Context):
        return ctx["result"]


def dominance_reference(points: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """O(n^2) brute force for tests."""
    n = points.shape[0]
    out = np.zeros(n)
    for i in range(n):
        mask = (points[:, 0] < points[i, 0]) & (points[:, 1] < points[i, 1])
        out[i] = weights[mask].sum()
    return out
