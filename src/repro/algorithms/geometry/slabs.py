"""The slab-partition skeleton shared by the Group B programs.

:class:`SlabProgram` implements the first three CGM rounds every
geometry algorithm here starts with:

* round "sample"    — each processor sends a regular sample of its
  objects' x-keys to processor 0;
* round "splitters" — processor 0 sorts the <= v^2 samples, picks v-1
  splitters and broadcasts them (deterministic regular sampling, like
  the sorting algorithm — no processor's slab receives more than ~2N/v
  objects in expectation for point objects);
* round "route"     — every object is sent to the slab(s) it intersects:
  points go to one slab, intervals/segments to every slab they cross.

Subclasses then take over with their own phase methods, starting at
``phase_local`` (all routed objects delivered).  Helpers for vectorized
routing and slab arithmetic are provided.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv


class SlabProgram(CGMProgram):
    """Base: sample -> splitters -> route, then subclass phases.

    Input per processor: an (k, d) float array of object rows.  The
    sampling key is column ``key_col``; interval objects override
    :meth:`route_slabs` to multicast.
    """

    name = "slab-program"
    kappa = 2.0
    key_col = 0

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        rows = np.asarray(local_input, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(-1, 1)
        ctx["pid"] = pid
        ctx["rows"] = rows
        ctx["phase"] = "sample"
        self.extra_setup(ctx, pid, cfg, local_input)

    def extra_setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        """Hook for subclasses (queries, parameters...)."""

    # ------------------------------------------------------------ the skeleton

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        return getattr(self, f"phase_{ctx['phase']}")(ctx, env)

    def phase_sample(self, ctx: Context, env: RoundEnv) -> bool:
        keys = self.sample_keys(ctx)
        n = keys.size
        v = env.v
        if n:
            idx = (np.arange(v, dtype=np.int64) * n) // v
            sample = np.sort(keys)[np.minimum(idx, n - 1)]
        else:
            sample = keys[:0]
        env.send(0, sample, tag="sample")
        ctx["phase"] = "splitters"
        return False

    def sample_keys(self, ctx: Context) -> np.ndarray:
        rows = ctx["rows"]
        return rows[:, self.key_col] if rows.size else np.zeros(0)

    def phase_splitters(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            gathered = np.sort(
                np.concatenate([m.payload for m in env.messages(tag="sample")])
            )
            m = gathered.size
            v = env.v
            if m >= v and v > 1:
                idx = (np.arange(1, v, dtype=np.int64) * m) // v
                splitters = gathered[idx]
            else:
                splitters = gathered[:0]
            for dest in range(v):
                env.send(dest, splitters, tag="splitters")
        ctx["phase"] = "route"
        return False

    def phase_route(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="splitters")
        splitters = msg.payload
        ctx["splitters"] = splitters
        rows = ctx.pop("rows")
        if rows.size:
            for dest in range(env.v):
                sel = self.route_mask(rows, splitters, dest, env.v)
                if sel.any():
                    env.send(dest, rows[sel], tag="slab")
        self.route_extra(ctx, env, splitters)
        ctx["phase"] = "local"
        return False

    def route_extra(self, ctx: Context, env: RoundEnv, splitters: np.ndarray) -> None:
        """Hook: route additional object classes (e.g. query points)."""

    def route_mask(
        self, rows: np.ndarray, splitters: np.ndarray, dest: int, v: int
    ) -> np.ndarray:
        """Which rows belong to slab *dest*?  Default: point objects."""
        return slab_of(rows[:, self.key_col], splitters) == dest

    # subclasses implement phase_local (and any further phases)

    def gather_slab(self, env: RoundEnv) -> np.ndarray:
        msgs = env.messages(tag="slab")
        if not msgs:
            return np.zeros((0, 1))
        return np.vstack([m.payload for m in msgs])


def slab_of(keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Slab index of each key: slab d covers (splitters[d-1], splitters[d]]."""
    if splitters.size == 0:
        return np.zeros(np.asarray(keys).shape, dtype=np.int64)
    return np.searchsorted(splitters, keys, side="left").astype(np.int64)


def interval_slabs(
    lo: np.ndarray, hi: np.ndarray, splitters: np.ndarray, dest: int
) -> np.ndarray:
    """Mask of intervals [lo, hi] intersecting slab *dest*."""
    v_bounds = slab_bounds(splitters, dest)
    return (hi >= v_bounds[0]) & (lo <= v_bounds[1])


def slab_bounds(splitters: np.ndarray, dest: int) -> tuple[float, float]:
    """(x_lo, x_hi) of slab *dest* (+-inf at the extremes)."""
    lo = -np.inf if dest == 0 else float(splitters[dest - 1])
    hi = np.inf if dest >= splitters.size else float(splitters[dest])
    return lo, hi


def pareto_suffix_max(y: np.ndarray, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-y representation of the staircase max(z | Y >= y).

    Returns (ys_sorted, best_z) where best_z[i] = max z among points with
    y >= ys_sorted[i]; query via searchsorted.
    """
    order = np.argsort(y, kind="stable")
    ys = y[order]
    zs = z[order]
    best = np.maximum.accumulate(zs[::-1])[::-1]
    return ys, best


class Staircase2D:
    """Incremental (y, z) Pareto staircase for decreasing-x sweeps.

    Kept sorted by y ascending; z is then strictly decreasing.  Queries
    and insertions are O(log k) amortized (dominated predecessors are
    removed on insertion).
    """

    __slots__ = ("ys", "zs")

    def __init__(self) -> None:
        self.ys: list[float] = []
        self.zs: list[float] = []

    def dominates(self, y: float, z: float) -> bool:
        """Does some staircase point (Y, Z) have Y >= y and Z >= z?"""
        import bisect

        i = bisect.bisect_left(self.ys, y)
        return i < len(self.ys) and self.zs[i] >= z

    def insert(self, y: float, z: float) -> None:
        """Insert a non-dominated point, evicting points it dominates."""
        import bisect

        i = bisect.bisect_left(self.ys, y)
        # evict predecessors with z <= z (they have y <= y): contiguous
        j = i
        while j > 0 and self.zs[j - 1] <= z:
            j -= 1
        self.ys[j:i] = [y]
        self.zs[j:i] = [z]


def local_maxima_sweep(pts: np.ndarray) -> np.ndarray:
    """Indices of the 3D-maximal rows of (x, y, z, ...) via x-desc sweep."""
    order = np.argsort(-pts[:, 0], kind="stable")
    stair = Staircase2D()
    keep = []
    for i in order:
        y, z = float(pts[i, 1]), float(pts[i, 2])
        if not stair.dominates(y, z):
            keep.append(i)
            stair.insert(y, z)
    return np.asarray(sorted(keep), dtype=np.int64)


def dominated_mask(
    y: np.ndarray, z: np.ndarray, ref_y: np.ndarray, ref_z: np.ndarray, strict: bool = False
) -> np.ndarray:
    """Which (y, z) points are dominated by some reference point?

    Dominated: exists ref with ref_y >= y and ref_z >= z (non-strict, the
    3D-maxima convention under general position).
    """
    if ref_y.size == 0:
        return np.zeros(y.shape, dtype=bool)
    ys, best = pareto_suffix_max(ref_y, ref_z)
    side = "left" if not strict else "right"
    pos = np.searchsorted(ys, y, side=side)
    best_z = np.where(pos < ys.size, best[np.minimum(pos, ys.size - 1)], -np.inf)
    return best_z >= z
