"""Uni- and multi-directional separability of two planar point sets
(Figure 5 Group B row 7).

* **Unidirectional** — given a direction d: the sets are separable along
  d iff max(A . d) < min(B . d); a projection + global min/max reduce,
  lambda = 2.
* **Multidirectional** — find *all* separating directions.  A and B are
  strictly linearly separable iff the origin lies outside the Minkowski
  difference conv(A) (-) conv(B); the separating directions form the
  open arc of unit vectors d with max_{c in A(-)B} d.c < 0.  The CGM
  part is two convex-hull filters (Group B row 3); the Minkowski
  difference of the two small hulls is local arithmetic.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv


class UnidirectionalSeparability(CGMProgram):
    """Input per processor: (A_slice, B_slice) point arrays; constructor
    fixes the direction.  Output: (separable, gap) on every processor."""

    name = "unidirectional-separability"
    kappa = 1.0

    def __init__(self, direction: tuple[float, float]) -> None:
        d = np.asarray(direction, dtype=np.float64)
        self.direction = d / np.linalg.norm(d)

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        A, B = local_input
        ctx["pid"] = pid
        ctx["A"] = np.asarray(A, dtype=np.float64).reshape(-1, 2)
        ctx["B"] = np.asarray(B, dtype=np.float64).reshape(-1, 2)

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r == 0:
            pa = ctx["A"] @ self.direction if ctx["A"].size else np.array([-np.inf])
            pb = ctx["B"] @ self.direction if ctx["B"].size else np.array([np.inf])
            env.send(0, (float(np.max(pa)), float(np.min(pb))), tag="extent")
            return False
        if r == 1:
            if ctx["pid"] == 0:
                highs, lows = zip(*(m.payload for m in env.messages(tag="extent")))
                a_max, b_min = max(highs), min(lows)
                for dest in range(env.v):
                    env.send(dest, (a_max < b_min, b_min - a_max), tag="verdict")
            return False
        (msg,) = env.messages(tag="verdict")
        ctx["verdict"] = msg.payload
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["verdict"]


def minkowski_difference_hull(hull_a: np.ndarray, hull_b: np.ndarray) -> np.ndarray:
    """Vertices of conv(A) (-) conv(B) = conv({a - b}) for hull points."""
    from scipy.spatial import ConvexHull

    diffs = (hull_a[:, None, :] - hull_b[None, :, :]).reshape(-1, 2)
    if diffs.shape[0] < 3:
        return diffs
    try:
        hull = ConvexHull(diffs)
        return diffs[hull.vertices]
    except Exception:
        return diffs


def separating_arc(poly: np.ndarray) -> tuple[bool, np.ndarray | None, tuple[float, float] | None]:
    """Directions strictly separating, given the Minkowski difference.

    Returns (separable, witness_direction, (angle_lo, angle_hi)).  The
    arc is the set of angles theta with max_c (cos t, sin t).c < 0.
    """
    if poly.shape[0] == 0:
        return False, None, None
    # origin inside? support function test on a dense set of directions
    # is exact for polygons when done per-vertex: the origin is outside
    # iff some direction has all vertices strictly negative.
    # candidate separating directions: normals of polygon edges + vertex dirs
    thetas = np.linspace(-np.pi, np.pi, 2048, endpoint=False)
    dirs = np.column_stack((np.cos(thetas), np.sin(thetas)))
    support = (dirs @ poly.T).max(axis=1)
    good = support < 0
    if not good.any():
        return False, None, None
    k = int(np.argmin(support))
    witness = dirs[k]
    good_thetas = thetas[good]
    return True, witness, (float(good_thetas.min()), float(good_thetas.max()))
