"""Lower envelope of non-crossing line segments (Figure 5 Group B rows 4-5).

Slab-partition by x: every segment is routed to each slab its x-span
crosses; a slab computes its local envelope over the *elementary
intervals* between consecutive endpoint abscissae — because the segments
are non-crossing, the vertical order of the segments is constant inside
an elementary interval, so the envelope there is the segment with the
minimum y at the midpoint.  The per-slab piece lists concatenate into
the global envelope (N here counts input + output, as the paper notes).

The local step evaluates all covering segments on all elementary
midpoints as one vectorized outer product — O(k*m) local work traded for
clarity and numpy throughput; the communication structure (one routing
h-relation, lambda = O(1)) is what the simulation theorem consumes.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.geometry.slabs import SlabProgram, interval_slabs, slab_bounds
from repro.cgm.program import Context, RoundEnv


def segment_y_at(segs: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """y of each segment row (x1,y1,x2,y2,...) at each x: (k, m) matrix.

    Positions outside a segment's x-span are +inf.
    """
    x1, y1, x2, y2 = segs[:, 0:1], segs[:, 1:2], segs[:, 2:3], segs[:, 3:4]
    t = (xs[None, :] - x1) / np.where(x2 - x1 == 0, 1e-300, x2 - x1)
    y = y1 + t * (y2 - y1)
    covered = (xs[None, :] >= x1) & (xs[None, :] <= x2)
    return np.where(covered, y, np.inf)


class LowerEnvelope(SlabProgram):
    """Input rows: (x1, y1, x2, y2, id) with x1 <= x2.

    Output per slab: (x_lo, x_hi, seg_id) pieces, seg_id = -1 where no
    segment covers the interval; pieces are disjoint and x-sorted.
    """

    name = "lower-envelope"

    def sample_keys(self, ctx: Context) -> np.ndarray:
        rows = ctx["rows"]
        if not rows.size:
            return np.zeros(0)
        return np.concatenate([rows[:, 0], rows[:, 2]])

    def route_mask(self, rows, splitters, dest, v):
        return interval_slabs(rows[:, 0], rows[:, 2], splitters, dest)

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        segs = self.gather_slab(env)
        me = ctx["pid"]
        lo, hi = slab_bounds(ctx["splitters"], me)
        pieces: list[tuple[float, float, int]] = []
        if segs.size:
            xlo = max(lo, float(segs[:, 0].min()))
            xhi = min(hi, float(segs[:, 2].max()))
            xs = np.unique(
                np.clip(np.concatenate([segs[:, 0], segs[:, 2], [xlo, xhi]]), xlo, xhi)
            )
            if xs.size >= 2:
                mids = (xs[:-1] + xs[1:]) / 2
                ys = segment_y_at(segs, mids)
                winner = np.argmin(ys, axis=0)
                covered = np.isfinite(ys[winner, np.arange(mids.size)])
                ids = np.where(covered, segs[winner, 4].astype(np.int64), -1)
                # merge adjacent intervals with the same winner
                start = 0
                for i in range(1, mids.size + 1):
                    if i == mids.size or ids[i] != ids[start]:
                        pieces.append((float(xs[start]), float(xs[i]), int(ids[start])))
                        start = i
        ctx["pieces"] = np.asarray(pieces, dtype=np.float64).reshape(-1, 3)
        return True

    def finish(self, ctx: Context):
        return ctx["pieces"]


def lower_envelope_reference(segs: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Reference: winning segment id at each probe x (brute force)."""
    ys = segment_y_at(segs, xs)
    winner = np.argmin(ys, axis=0)
    covered = np.isfinite(ys[winner, np.arange(xs.size)])
    return np.where(covered, segs[winner, 4].astype(np.int64), -1)
