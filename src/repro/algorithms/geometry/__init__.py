"""Group B of Figure 5: computational-geometry / GIS CGM algorithms.

The common skeleton is the *slab partition* (:mod:`.slabs`): sample the
x-coordinates, pick v-1 global splitters, route every object to the
slab(s) it intersects, solve locally with an optimal sequential
algorithm, and exchange O(v)-size summaries where slabs interact — the
standard O(1)-round CGM recipe of the sources the paper simulates
([13], [24], [27]).

Problems (paper Figure 5, Group B):

* 3D convex hull & 2D Delaunay triangulation (randomized) — :mod:`.hull`,
  :mod:`.delaunay`
* lower envelope of non-crossing segments — :mod:`.envelope`
* area of the union of rectangles — :mod:`.measure`
* 3D maxima — :mod:`.maxima`
* 2D all-nearest-neighbours — :mod:`.neighbors`
* 2D weighted dominance counting — :mod:`.dominance`
* uni-/multi-directional separability — :mod:`.separability`
* trapezoidal decomposition & batched planar point location
  (next-element search) — :mod:`.trapezoid`
* segment tree construction & batched stabbing — :mod:`.segtree`

One-call wrappers live in :mod:`.api`.
"""

from repro.algorithms.geometry.triangulation import (
    triangulate_monotone,
    triangulate_polygon,
    triangulation_is_valid,
)
from repro.algorithms.geometry.api import (
    all_nearest_neighbors,
    unidirectional_separable,
    convex_hull_2d,
    convex_hull_3d,
    delaunay_2d,
    dominance_counts,
    lower_envelope,
    maxima_3d,
    point_location,
    separability_directions,
    stabbing_queries,
    trapezoidal_decomposition,
    union_area,
)

__all__ = [
    "all_nearest_neighbors",
    "unidirectional_separable",
    "convex_hull_2d",
    "convex_hull_3d",
    "delaunay_2d",
    "dominance_counts",
    "lower_envelope",
    "maxima_3d",
    "point_location",
    "separability_directions",
    "stabbing_queries",
    "trapezoidal_decomposition",
    "triangulate_monotone",
    "triangulate_polygon",
    "triangulation_is_valid",
    "union_area",
]
