"""CGM convex hulls in 2D and 3D (Figure 5 Group B row 3).

The paper's source [24] is a randomized CGM hull; we implement the
standard practical variant with the same round structure: every
processor computes the convex hull of its own Theta(N/v) points (an
optimal local algorithm — qhull via scipy) and keeps only its extreme
points; the surviving points — whose expected number is tiny for
non-degenerate inputs (O(log n) for uniform squares, O(n^(1/3)) for
balls) — are gathered and the final hull is computed and broadcast.
Like the paper's source, the performance guarantee is probabilistic
(the filter is always *correct*: a globally extreme point is extreme in
every subset containing it).

Output: the hull vertices' global ids (every processor returns them).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.util.validation import SimulationError


def _local_extremes(pts: np.ndarray, dim: int) -> np.ndarray:
    """Indices of the extreme points of *pts* (rows: coords..., id).

    Falls back to "keep everything" for degenerate/too-small sets, which
    is always correct.
    """
    if pts.shape[0] <= dim + 1:
        return np.arange(pts.shape[0])
    try:
        from scipy.spatial import ConvexHull

        hull = ConvexHull(pts[:, :dim])
        return hull.vertices
    except Exception:
        return np.arange(pts.shape[0])


class ConvexHullFilter(CGMProgram):
    """Local-filter + gather hull.  Input rows: (coords..., global-id)."""

    name = "convex-hull"
    kappa = 2.0

    def __init__(self, dim: int = 2) -> None:
        if dim not in (2, 3):
            raise ValueError("dim must be 2 or 3")
        self.dim = dim

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        pts = np.asarray(local_input, dtype=np.float64).reshape(-1, self.dim + 1)
        ctx["pid"] = pid
        ctx["pts"] = pts

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r == 0:
            pts = ctx["pts"]
            survivors = pts[_local_extremes(pts, self.dim)] if pts.size else pts
            env.send(0, survivors, tag="survivors")
            return False
        if r == 1:
            if ctx["pid"] == 0:
                gathered = np.vstack(
                    [m.payload for m in env.messages(tag="survivors")]
                )
                if gathered.shape[0] == 0:
                    raise SimulationError("convex hull of an empty point set")
                idx = _local_extremes(gathered, self.dim)
                hull_rows = gathered[idx]
                ids = np.sort(hull_rows[:, self.dim].astype(np.int64))
                for dest in range(env.v):
                    env.send(dest, ids, tag="hull")
            return False
        (msg,) = env.messages(tag="hull")
        ctx["hull_ids"] = msg.payload
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["hull_ids"]


def hull_ids_reference(points: np.ndarray) -> np.ndarray:
    """Reference hull vertex ids via scipy on the full set."""
    from scipy.spatial import ConvexHull

    return np.sort(ConvexHull(points).vertices)
