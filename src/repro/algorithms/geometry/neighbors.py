"""2D all-nearest-neighbours (Figure 5 Group B row 6).

Slab-partition by x, then the exact two-phase refinement:

1. each slab builds a k-d tree over its points and computes every local
   point's nearest neighbour *within the slab* — an upper bound d_p on
   the true NN distance;
2. every point whose disk of radius d_p pokes outside its slab is sent to
   each slab that disk intersects; those slabs answer with their best
   candidate, and the home slab takes the minimum.

Exactness: the true nearest neighbour of p lies within d_p of p, so it
lives in a slab whose x-range intersects [x_p - d_p, x_p + d_p] — all of
which are queried.  Communication volume is output-sensitive (tiny for
well-spread inputs, which is the CGM assumption N/v >> v).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.algorithms.geometry.slabs import SlabProgram, slab_bounds
from repro.cgm.program import Context, RoundEnv


class AllNearestNeighbors(SlabProgram):
    """Input rows: (x, y, global-id).  Output rows: (id, nn-id, distance)."""

    name = "all-nearest-neighbors"

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        pts = self.gather_slab(env)
        ctx["pts"] = pts
        v = env.v
        splitters = ctx["splitters"]
        if pts.shape[0] >= 2:
            tree = cKDTree(pts[:, :2])
            dist, idx = tree.query(pts[:, :2], k=2)
            d = dist[:, 1]
            nn = pts[idx[:, 1], 2]
        elif pts.shape[0] == 1:
            d = np.array([np.inf])
            nn = np.array([-1.0])
        else:
            d = np.zeros(0)
            nn = np.zeros(0)
        ctx["best_d"] = d
        ctx["best_nn"] = nn
        # send boundary-crossing queries: (home-slab, id, x, y, d)
        if pts.size:
            me = ctx["pid"]
            for dest in range(v):
                if dest == me:
                    continue
                lo, hi = slab_bounds(splitters, dest)
                sel = (pts[:, 0] + d >= lo) & (pts[:, 0] - d <= hi)
                if sel.any():
                    rows = np.column_stack(
                        (
                            np.full(sel.sum(), me, dtype=np.float64),
                            pts[sel, 2],
                            pts[sel, 0],
                            pts[sel, 1],
                            d[sel],
                        )
                    )
                    env.send(dest, rows, tag="query")
        ctx["phase"] = "answer"
        return False

    def phase_answer(self, ctx: Context, env: RoundEnv) -> bool:
        pts = ctx["pts"]
        tree = cKDTree(pts[:, :2]) if pts.shape[0] else None
        for m in env.messages(tag="query"):
            rows = m.payload
            if tree is None:
                continue
            dist, idx = tree.query(rows[:, 2:4], k=1)
            reply = np.column_stack((rows[:, 1], pts[idx, 2], dist))
            env.send(int(rows[0, 0]), reply, tag="reply")
        ctx["phase"] = "combine"
        return False

    def phase_combine(self, ctx: Context, env: RoundEnv) -> bool:
        pts = ctx["pts"]
        best_d, best_nn = ctx["best_d"], ctx["best_nn"]
        if pts.size:
            pos = {float(g): i for i, g in enumerate(pts[:, 2])}
            for m in env.messages(tag="reply"):
                for gid, cand_nn, cand_d in m.payload:
                    i = pos[float(gid)]
                    if cand_d < best_d[i] and cand_nn != pts[i, 2]:
                        best_d[i] = cand_d
                        best_nn[i] = cand_nn
            ctx["result"] = np.column_stack((pts[:, 2], best_nn, best_d))
        else:
            ctx["result"] = np.zeros((0, 3))
        return True

    def finish(self, ctx: Context):
        return ctx["result"]
