"""Polygon triangulation (Figure 5 Group B row 1 — local routines).

The CGM polygon-triangulation pipeline of the paper's source [13] is
trapezoidal decomposition -> monotone pieces -> per-piece triangulation;
the decomposition is :mod:`repro.algorithms.geometry.trapezoid` and this
module supplies the sequential building blocks a slab runs locally:

* :func:`triangulate_monotone` — the classic O(n) stack algorithm for
  y-monotone polygons;
* :func:`triangulate_polygon` — ear clipping for arbitrary simple
  polygons (the robust general-purpose local routine);
* :func:`polygon_area` / :func:`is_ccw` — orientation helpers.

(The fully distributed simple-polygon triangulator is out of scope — see
EXPERIMENTS.md "Deviations"; point-set triangulation is covered exactly
by :mod:`repro.algorithms.geometry.delaunay`.)
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ConfigurationError, require


def polygon_area(pts: np.ndarray) -> float:
    """Signed area (positive for counter-clockwise orientation)."""
    x, y = pts[:, 0], pts[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def is_ccw(pts: np.ndarray) -> bool:
    return polygon_area(pts) > 0


def _cross(o, a, b) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _point_in_triangle(p, a, b, c) -> bool:
    d1 = _cross(p, a, b)
    d2 = _cross(p, b, c)
    d3 = _cross(p, c, a)
    has_neg = (d1 < 0) or (d2 < 0) or (d3 < 0)
    has_pos = (d1 > 0) or (d2 > 0) or (d3 > 0)
    return not (has_neg and has_pos)


def triangulate_polygon(pts: np.ndarray) -> np.ndarray:
    """Ear-clipping triangulation of a simple polygon (no holes).

    Returns (n-2, 3) vertex-index triples.  Accepts either orientation;
    raises for degenerate inputs where no ear can be clipped (self-
    intersecting or repeated vertices).
    """
    pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
    n = pts.shape[0]
    require(n >= 3, f"polygon needs >= 3 vertices, got {n}")
    idx = list(range(n))
    if not is_ccw(pts):
        idx.reverse()

    triangles: list[tuple[int, int, int]] = []
    guard = 0
    while len(idx) > 3:
        guard += 1
        if guard > 2 * n * n:
            raise ConfigurationError(
                "ear clipping failed to converge — polygon is probably not simple"
            )
        m = len(idx)
        clipped = False
        for k in range(m):
            i_prev, i_cur, i_next = idx[k - 1], idx[k], idx[(k + 1) % m]
            a, b, c = pts[i_prev], pts[i_cur], pts[i_next]
            if _cross(a, b, c) <= 0:
                continue  # reflex vertex — not an ear
            # no other polygon vertex may lie inside the candidate ear
            ear = True
            for j in idx:
                if j in (i_prev, i_cur, i_next):
                    continue
                if _point_in_triangle(pts[j], a, b, c):
                    ear = False
                    break
            if ear:
                triangles.append((i_prev, i_cur, i_next))
                idx.pop(k)
                clipped = True
                break
        if not clipped:
            raise ConfigurationError(
                "no ear found — polygon is not simple (or fully degenerate)"
            )
    triangles.append((idx[0], idx[1], idx[2]))
    return np.asarray(triangles, dtype=np.int64)


def triangulate_monotone(pts: np.ndarray) -> np.ndarray:
    """O(n) triangulation of a y-monotone simple polygon.

    *pts* are the polygon vertices in boundary order (either
    orientation); the polygon must be monotone with respect to y (every
    horizontal line meets the boundary in at most two points).  The
    classic two-chain stack algorithm.
    """
    pts = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
    n = pts.shape[0]
    require(n >= 3, f"polygon needs >= 3 vertices, got {n}")
    order = list(range(n))
    if not is_ccw(pts):
        order.reverse()

    # CCW boundary order in `seq`
    seq = [order[k] for k in range(n)]
    top = max(seq, key=lambda i: (pts[i, 1], pts[i, 0]))
    bottom = min(seq, key=lambda i: (pts[i, 1], pts[i, 0]))

    # with CCW orientation, walking forward from top to bottom follows
    # the LEFT chain; interior vertices of the other walk are the right
    pos = {u: k for k, u in enumerate(seq)}
    left_chain: set[int] = set()
    k = pos[top]
    while seq[k] != bottom:
        left_chain.add(seq[k])
        k = (k + 1) % n
    left_chain.add(bottom)

    merged = sorted(range(n), key=lambda i: (-pts[i, 1], pts[i, 0]))

    def same_chain(a: int, b: int) -> bool:
        return (a in left_chain) == (b in left_chain)

    triangles: list[tuple[int, int, int]] = []
    stack = [merged[0], merged[1]]
    for v in merged[2:-1]:
        if not same_chain(v, stack[-1]):
            prev_top = stack[-1]
            while len(stack) >= 2:
                a = stack.pop()
                triangles.append((v, a, stack[-1]))
            stack = [prev_top, v]
        else:
            last = stack.pop()
            while stack and _diagonal_inside(pts, v, stack[-1], last, v in left_chain):
                triangles.append((v, last, stack[-1]))
                last = stack.pop()
            stack.append(last)
            stack.append(v)
    u = merged[-1]
    last = stack.pop()
    while stack:
        triangles.append((u, last, stack[-1]))
        last = stack.pop()
    return np.asarray(triangles, dtype=np.int64)


def _diagonal_inside(pts, v, candidate, last, on_left: bool) -> bool:
    """May the funnel pop `last`, i.e. is diagonal v—candidate inside?

    Inside iff the funnel vertex `last` is convex.  With CCW boundary
    orientation the left chain runs top-to-bottom (so the stack triple
    candidate->last->v follows the boundary: convex = left turn =
    cross(candidate, last, v) > 0, which equals -cross(v, last,
    candidate)); the right chain runs bottom-to-top, reversing the sign.
    """
    cr = _cross(pts[v], pts[last], pts[candidate])
    return cr < 0 if on_left else cr > 0


def triangulation_is_valid(pts: np.ndarray, triangles: np.ndarray) -> bool:
    """Validity certificate for a triangulation of a simple polygon.

    Checks: exactly n-2 non-degenerate triangles; areas summing to the
    polygon area; every boundary edge used exactly once and every
    internal edge shared by exactly two triangles (which together rule
    out folds and duplicates).
    """
    pts = np.asarray(pts, dtype=np.float64)
    n = pts.shape[0]
    if triangles.shape[0] != n - 2:
        return False
    total = 0.0
    edge_count: dict[tuple[int, int], int] = {}
    for a, b, c in triangles:
        area = abs(_cross(pts[a], pts[b], pts[c])) / 2
        if area <= 0:
            return False
        total += area
        for e in ((a, b), (b, c), (c, a)):
            key = (min(e), max(e))
            edge_count[key] = edge_count.get(key, 0) + 1
    if not np.isclose(total, abs(polygon_area(pts)), rtol=1e-9):
        return False
    boundary = {(min(i, (i + 1) % n), max(i, (i + 1) % n)) for i in range(n)}
    for e, cnt in edge_count.items():
        if (e in boundary and cnt != 1) or (e not in boundary and cnt != 2):
            return False
    return all(edge_count.get(e, 0) == 1 for e in boundary)
