"""Randomized CGM 2D Delaunay triangulation (Figure 5 Group B row 3).

Slab-partition by x with *boundary strips*, plus an **exact completeness
certificate**:

* each slab triangulates its own points together with strips borrowed
  from the neighbouring slabs and keeps the triangles it can **certify**:
  a triangle is globally Delaunay iff its circumcircle is empty of all
  points, and emptiness is locally checkable when the circumcircle lies
  within the x-range whose points the slab provably holds (own slab
  widened by the strips actually received);
* certified triangles are *always correct*; completeness is checked
  exactly on processor 0 with Euler's relation — a Delaunay
  triangulation of n points with h hull vertices has exactly
  ``2n - 2 - h`` triangles, and h is computed exactly from the gathered
  local hull candidates (a globally extreme point is locally extreme);
* if the certified set is short (strips too narrow — the probabilistic
  caveat the paper itself notes for its randomized source [24]), the
  algorithm falls back to one exact centralized pass.

Assumes general position (no 4 cocircular / 3 collinear points), under
which the Delaunay triangulation is unique.

Output per processor: dict with the global triangle list (sorted id
triples) and whether the fallback fired.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import ConvexHull, Delaunay

from repro.algorithms.geometry.slabs import SlabProgram, slab_bounds
from repro.cgm.program import Context, RoundEnv


def _circumcircles(pts: np.ndarray, tris: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Circumcenters (k, 2) and radii (k,) of the given triangles."""
    a, b, c = pts[tris[:, 0]], pts[tris[:, 1]], pts[tris[:, 2]]
    ab = b - a
    ac = c - a
    d = 2 * (ab[:, 0] * ac[:, 1] - ab[:, 1] * ac[:, 0])
    d = np.where(np.abs(d) < 1e-300, 1e-300, d)
    ab2 = (ab**2).sum(axis=1)
    ac2 = (ac**2).sum(axis=1)
    ux = (ac[:, 1] * ab2 - ab[:, 1] * ac2) / d
    uy = (ab[:, 0] * ac2 - ac[:, 0] * ab2) / d
    center = a + np.column_stack((ux, uy))
    radius = np.linalg.norm(center - a, axis=1)
    return center, radius


def triangles_canonical(tris_ids: np.ndarray) -> set[tuple[int, int, int]]:
    """Canonicalize triangles as sorted vertex-id tuples."""
    return {tuple(sorted(map(int, t))) for t in tris_ids}


class DelaunayCGM(SlabProgram):
    """Input rows: (x, y, global-id)."""

    name = "delaunay-2d"

    def __init__(self, n_points: int, strip_factor: float = 6.0) -> None:
        self.n_points = n_points
        self.strip_factor = strip_factor

    # --------------------------------------- skeleton overrides: global bbox

    def phase_sample(self, ctx: Context, env: RoundEnv) -> bool:
        rows = ctx["rows"]
        if rows.size:
            bbox = (
                float(rows[:, 0].min()),
                float(rows[:, 0].max()),
                float(rows[:, 1].min()),
                float(rows[:, 1].max()),
            )
        else:
            bbox = (np.inf, -np.inf, np.inf, -np.inf)
        env.send(0, bbox, tag="bbox")
        return super().phase_sample(ctx, env)

    def phase_splitters(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            boxes = [m.payload for m in env.messages(tag="bbox")]
            gbbox = (
                min(b[0] for b in boxes),
                max(b[1] for b in boxes),
                min(b[2] for b in boxes),
                max(b[3] for b in boxes),
            )
            for dest in range(env.v):
                env.send(dest, gbbox, tag="gbbox")
        return super().phase_splitters(ctx, env)

    def phase_route(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="gbbox")
        ctx["gbbox"] = msg.payload
        return super().phase_route(ctx, env)

    # ---------------------------------------------------------------- strips

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        pts = self.gather_slab(env)
        ctx["pts"] = pts
        splitters = ctx["splitters"]
        me, v = ctx["pid"], env.v
        lo, hi = slab_bounds(splitters, me)
        xmin, xmax, ymin, ymax = ctx["gbbox"]

        # global typical spacing: the certificate band width everywhere
        area = max((xmax - xmin) * (ymax - ymin), 1e-12)
        strip = self.strip_factor * np.sqrt(area / max(self.n_points, 1))
        ctx["strip"] = strip

        if pts.size:
            # a sender may only claim the extension its own slab actually
            # covers: if the strip is wider than the slab, points further
            # out belong to the *next* slab over and were never forwarded
            if me > 0 and np.isfinite(lo):
                sel = pts[:, 0] <= lo + strip
                covered = strip if not np.isfinite(hi) else min(strip, hi - lo)
                env.send(
                    me - 1, {"pts": pts[sel], "width": covered}, tag="strip-from-right"
                )
            if me < v - 1 and np.isfinite(hi):
                sel = pts[:, 0] >= hi - strip
                covered = strip if not np.isfinite(lo) else min(strip, hi - lo)
                env.send(
                    me + 1, {"pts": pts[sel], "width": covered}, tag="strip-from-left"
                )
            # horizontal boundary bands go to every slab: hull slivers'
            # huge circumdisks intersect the data region only inside these
            hsel = (pts[:, 1] >= ymax - strip) | (pts[:, 1] <= ymin + strip)
            if hsel.any():
                for dest in range(v):
                    if dest != me:
                        env.send(dest, pts[hsel], tag="hstrip")
        else:
            if me > 0:
                env.send(me - 1, {"pts": pts, "width": strip}, tag="strip-from-right")
            if me < v - 1:
                env.send(me + 1, {"pts": pts, "width": strip}, tag="strip-from-left")
        ctx["phase"] = "triangulate"
        return False

    # ------------------------------------------------------------- certify

    def phase_triangulate(self, ctx: Context, env: RoundEnv) -> bool:
        pts = ctx["pts"]
        me = ctx["pid"]
        splitters = ctx["splitters"]
        lo, hi = slab_bounds(splitters, me)

        left_ext = 0.0
        right_ext = 0.0
        strip_pts = []
        for m in env.messages(tag="strip-from-left"):
            strip_pts.append(m.payload["pts"])
            left_ext = m.payload["width"]
        for m in env.messages(tag="strip-from-right"):
            strip_pts.append(m.payload["pts"])
            right_ext = m.payload["width"]
        for m in env.messages(tag="hstrip"):
            strip_pts.append(m.payload)
        all_pts = (
            np.vstack([pts] + [s for s in strip_pts if s.size])
            if pts.size or any(s.size for s in strip_pts)
            else pts
        )
        if all_pts.size:
            # points can arrive twice (e.g. via both a vertical and a
            # horizontal strip): dedupe by id
            _, uniq = np.unique(all_pts[:, 2], return_index=True)
            all_pts = all_pts[uniq]

        certified = np.zeros((0, 3), dtype=np.int64)
        hull_candidates = pts[:0]
        if all_pts.shape[0] >= 3:
            try:
                tri = Delaunay(all_pts[:, :2])
            except Exception:
                tri = None
            if tri is not None:
                simplices = tri.simplices
                centers, radii = _circumcircles(all_pts[:, :2], simplices)
                left = lo - left_ext if np.isfinite(lo) else -np.inf
                right = hi + right_ext if np.isfinite(hi) else np.inf
                ok_x = (centers[:, 0] - radii >= left) & (
                    centers[:, 0] + radii <= right
                )
                # horizontal-band certificates: the circumdisk meets the
                # data region only inside the globally-shared top/bottom
                # band, where this slab holds every point
                _xmin, _xmax, ymin, ymax = ctx["gbbox"]
                strip = ctx["strip"]
                ok_top = centers[:, 1] - radii >= ymax - strip
                ok_bottom = centers[:, 1] + radii <= ymin + strip
                ok = ok_x | ok_top | ok_bottom
                ids = all_pts[:, 2].astype(np.int64)
                certified = np.sort(ids[simplices[ok]], axis=1)
        # hull candidates: local extremes of MY OWN points
        if pts.shape[0] >= 3:
            try:
                hull_candidates = pts[ConvexHull(pts[:, :2]).vertices]
            except Exception:
                hull_candidates = pts
        else:
            hull_candidates = pts

        env.send(0, {"tris": certified, "hull": hull_candidates}, tag="result")
        ctx["phase"] = "merge"
        return False

    # --------------------------------------------------------------- decide

    def phase_merge(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            tris: set[tuple[int, int, int]] = set()
            hull_pts = []
            for m in env.messages(tag="result"):
                tris |= triangles_canonical(m.payload["tris"])
                if m.payload["hull"].size:
                    hull_pts.append(m.payload["hull"])
            hp = np.vstack(hull_pts)
            n_total = ctx["n_total"]
            if hp.shape[0] >= 3:
                h = len(ConvexHull(hp[:, :2]).vertices)
            else:
                h = hp.shape[0]
            expected = 2 * n_total - 2 - h
            complete = len(tris) == expected and n_total >= 3
            ctx["fallback"] = not complete
            if complete:
                out = np.asarray(sorted(tris), dtype=np.int64).reshape(-1, 3)
                for dest in range(env.v):
                    env.send(dest, out, tag="final")
            else:
                for dest in range(env.v):
                    env.send(dest, "need-points", tag="fallback")
        ctx["phase"] = "finalize"
        return False

    def phase_finalize(self, ctx: Context, env: RoundEnv) -> bool:
        if env.messages(tag="fallback"):
            env.send(0, ctx["pts"], tag="allpts")
            ctx["phase"] = "fallback_solve"
            return False
        (msg,) = env.messages(tag="final")
        ctx["result"] = msg.payload
        return True

    def phase_fallback_solve(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            chunks = [m.payload for m in env.messages(tag="allpts") if m.payload.size]
            pts = np.vstack(chunks)
            ids = pts[:, 2].astype(np.int64)
            tri = Delaunay(pts[:, :2])
            out = np.asarray(
                sorted(triangles_canonical(ids[tri.simplices])), dtype=np.int64
            ).reshape(-1, 3)
            for dest in range(env.v):
                env.send(dest, out, tag="final")
        ctx["phase"] = "fallback_recv"
        return False

    def phase_fallback_recv(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="final")
        ctx["result"] = msg.payload
        return True

    # ------------------------------------------------------------------ misc

    def extra_setup(self, ctx: Context, pid, cfg, local_input) -> None:
        ctx["n_total"] = self.n_points

    def finish(self, ctx: Context):
        return {
            "triangles": ctx["result"],
            "fallback": bool(ctx.get("fallback", False)),
        }
