"""One-call wrappers for the Group B geometry algorithms.

Each wrapper attaches global ids, partitions the input over the v
virtual processors, runs the CGM program on the chosen backend, and
assembles the distributed outputs.  All return a :class:`GeoResult`
carrying the cost report(s) so the Figure 5 benchmarks can read parallel
I/O counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algorithms.collectives import partition_array
from repro.cgm.config import MachineConfig
from repro.cgm.metrics import CostReport
from repro.em.runner import em_run


@dataclass
class GeoResult:
    values: Any
    reports: list[CostReport] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_parallel_ios(self) -> int:
        return sum(r.io.parallel_ios for r in self.reports)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.reports)


def _stage_cfg(cfg: MachineConfig, rows: np.ndarray) -> MachineConfig:
    return cfg.with_(N=max(1, int(rows.size)), M=None)


def _with_ids(arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr, dtype=np.float64)
    return np.column_stack((arr, np.arange(arr.shape[0], dtype=np.float64)))


def maxima_3d(
    points: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """Indices of the 3D-maximal points (general position assumed)."""
    from repro.algorithms.geometry.maxima import Maxima3D

    rows = _with_ids(points)
    res = em_run(Maxima3D(), partition_array(rows, cfg.v), _stage_cfg(cfg, rows), engine)
    out = [o for o in res.outputs if o.size]
    ids = np.sort(np.concatenate([o[:, 3] for o in out]).astype(np.int64)) if out else np.zeros(0, np.int64)
    return GeoResult(ids, [res.report])


def all_nearest_neighbors(
    points: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """(nn_index, distance) for every 2D point."""
    from repro.algorithms.geometry.neighbors import AllNearestNeighbors

    rows = _with_ids(points)
    res = em_run(
        AllNearestNeighbors(), partition_array(rows, cfg.v), _stage_cfg(cfg, rows), engine
    )
    n = rows.shape[0]
    nn = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, np.inf)
    for o in res.outputs:
        for gid, nnid, d in o:
            nn[int(gid)] = int(nnid)
            dist[int(gid)] = d
    return GeoResult({"nn": nn, "dist": dist}, [res.report])


def dominance_counts(
    points: np.ndarray,
    weights: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GeoResult:
    """Per point, the total weight of points strictly dominated by it."""
    from repro.algorithms.geometry.dominance import DominanceCount

    pts = np.asarray(points, dtype=np.float64)
    rows = np.column_stack((pts, np.asarray(weights, dtype=np.float64)))
    rows = _with_ids(rows)
    res = em_run(
        DominanceCount(), partition_array(rows, cfg.v), _stage_cfg(cfg, rows), engine
    )
    out = np.zeros(rows.shape[0])
    for o in res.outputs:
        for gid, val in o:
            out[int(gid)] = val
    return GeoResult(out, [res.report])


def convex_hull_2d(
    points: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """Vertex indices of the 2D convex hull (sorted)."""
    from repro.algorithms.geometry.hull import ConvexHullFilter

    rows = _with_ids(points)
    res = em_run(
        ConvexHullFilter(dim=2), partition_array(rows, cfg.v), _stage_cfg(cfg, rows), engine
    )
    return GeoResult(res.outputs[0], [res.report])


def convex_hull_3d(
    points: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """Vertex indices of the 3D convex hull (sorted)."""
    from repro.algorithms.geometry.hull import ConvexHullFilter

    rows = _with_ids(points)
    res = em_run(
        ConvexHullFilter(dim=3), partition_array(rows, cfg.v), _stage_cfg(cfg, rows), engine
    )
    return GeoResult(res.outputs[0], [res.report])


def delaunay_2d(
    points: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
    strip_factor: float = 6.0,
) -> GeoResult:
    """Global Delaunay triangles as sorted id triples (exact; general
    position assumed).  ``extra['fallback']`` reports whether the
    centralized exactness fallback fired."""
    from repro.algorithms.geometry.delaunay import DelaunayCGM

    rows = _with_ids(points)
    res = em_run(
        DelaunayCGM(n_points=rows.shape[0], strip_factor=strip_factor),
        partition_array(rows, cfg.v),
        _stage_cfg(cfg, rows),
        engine,
    )
    first = res.outputs[0]
    return GeoResult(
        first["triangles"], [res.report], extra={"fallback": first["fallback"]}
    )


def lower_envelope(
    segments: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """Lower envelope pieces (x_lo, x_hi, seg_id), globally x-sorted and
    merged."""
    from repro.algorithms.geometry.envelope import LowerEnvelope

    rows = _with_ids(segments)
    res = em_run(
        LowerEnvelope(), partition_array(rows, cfg.v), _stage_cfg(cfg, rows), engine
    )
    pieces = [o for o in res.outputs if o.size]
    if not pieces:
        return GeoResult(np.zeros((0, 3)), [res.report])
    allp = np.vstack(pieces)
    allp = allp[np.argsort(allp[:, 0], kind="stable")]
    merged: list[list[float]] = []
    for x0, x1, sid in allp:
        if merged and merged[-1][2] == sid and abs(merged[-1][1] - x0) < 1e-12:
            merged[-1][1] = x1
        else:
            merged.append([x0, x1, sid])
    return GeoResult(np.asarray(merged), [res.report])


def union_area(
    rects: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """Total area of the union of axis-parallel rectangles."""
    from repro.algorithms.geometry.measure import UnionArea

    rows = _with_ids(rects)
    res = em_run(UnionArea(), partition_array(rows, cfg.v), _stage_cfg(cfg, rows), engine)
    return GeoResult(res.outputs[0], [res.report])


def trapezoidal_decomposition(
    segments: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """Trapezoid rows (x_lo, x_hi, below_id, above_id) over all slabs."""
    from repro.algorithms.geometry.trapezoid import TrapezoidalDecomposition

    rows = _with_ids(segments)
    res = em_run(
        TrapezoidalDecomposition(),
        partition_array(rows, cfg.v),
        _stage_cfg(cfg, rows),
        engine,
    )
    traps = [o for o in res.outputs if o.size]
    out = np.vstack(traps) if traps else np.zeros((0, 4))
    return GeoResult(out[np.lexsort((out[:, 2], out[:, 0]))] if out.size else out, [res.report])


def point_location(
    segments: np.ndarray,
    queries: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GeoResult:
    """Next element below each query point: array of segment ids (-1 if
    none), indexed by query order."""
    from repro.algorithms.geometry.trapezoid import PointLocation

    seg_rows = _with_ids(segments)
    q = np.asarray(queries, dtype=np.float64).reshape(-1, 2)
    q_rows = np.column_stack((q, np.arange(q.shape[0], dtype=np.float64)))
    inputs = list(
        zip(partition_array(seg_rows, cfg.v), partition_array(q_rows, cfg.v))
    )
    res = em_run(PointLocation(), inputs, _stage_cfg(cfg, seg_rows), engine)
    out = np.full(q.shape[0], -1, dtype=np.int64)
    for o in res.outputs:
        for qid, sid in o:
            out[int(qid)] = int(sid)
    return GeoResult(out, [res.report])


def stabbing_queries(
    intervals: np.ndarray,
    xs: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GeoResult:
    """Ids of intervals containing each query x (list per query)."""
    from repro.algorithms.geometry.segtree import StabbingQueries

    ivals = _with_ids(intervals)
    xs = np.asarray(xs, dtype=np.float64)
    q_rows = np.column_stack((xs, np.arange(xs.size, dtype=np.float64)))
    inputs = list(zip(partition_array(ivals, cfg.v), partition_array(q_rows, cfg.v)))
    res = em_run(StabbingQueries(), inputs, _stage_cfg(cfg, ivals), engine)
    out: list[list[int]] = [[] for _ in range(xs.size)]
    for answers in res.outputs:
        for qid, ids in answers:
            out[qid] = sorted(int(i) for i in ids)
    return GeoResult(out, [res.report])


def unidirectional_separable(
    A: np.ndarray,
    B: np.ndarray,
    direction: tuple[float, float],
    cfg: MachineConfig,
    engine: str | None = None,
) -> GeoResult:
    """Is max(A.d) < min(B.d)?  Returns (separable, gap)."""
    from repro.algorithms.geometry.separability import UnidirectionalSeparability

    A = np.asarray(A, dtype=np.float64).reshape(-1, 2)
    B = np.asarray(B, dtype=np.float64).reshape(-1, 2)
    inputs = list(zip(partition_array(A, cfg.v), partition_array(B, cfg.v)))
    res = em_run(
        UnidirectionalSeparability(direction),
        inputs,
        cfg.with_(N=max(1, A.size + B.size), M=None),
        engine,
    )
    sep, gap = res.outputs[0]
    return GeoResult(sep, [res.report], extra={"gap": gap})


def separability_directions(
    A: np.ndarray, B: np.ndarray, cfg: MachineConfig, engine: str | None = None
) -> GeoResult:
    """Multidirectional separability: all strictly separating directions.

    Returns separable flag; ``extra`` holds a witness unit direction and
    the (angle_lo, angle_hi) arc when separable.
    """
    from repro.algorithms.geometry.separability import (
        minkowski_difference_hull,
        separating_arc,
    )

    A = np.asarray(A, dtype=np.float64).reshape(-1, 2)
    B = np.asarray(B, dtype=np.float64).reshape(-1, 2)
    ha = convex_hull_2d(A, cfg, engine)
    hb = convex_hull_2d(B, cfg, engine)
    poly = minkowski_difference_hull(A[ha.values], B[hb.values])
    separable, witness, arc = separating_arc(poly)
    return GeoResult(
        separable,
        ha.reports + hb.reports,
        extra={"witness": witness, "arc": arc},
    )
