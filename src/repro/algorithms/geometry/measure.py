"""Area of the union of axis-parallel rectangles (Figure 5 Group B row 6).

Slab-partition by x: rectangles are clipped to each slab they cross,
each slab runs the textbook measure sweep (x events + coverage counts
over compressed y intervals) on its clipped pieces, and the slab areas
sum to the global union area — correct because slabs tile the x-axis
disjointly.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.geometry.slabs import SlabProgram, interval_slabs, slab_bounds
from repro.cgm.program import Context, RoundEnv


def union_area_sweep(rects: np.ndarray) -> float:
    """Union area of rows (x1, y1, x2, y2) by plane sweep."""
    if rects.shape[0] == 0:
        return 0.0
    ys = np.unique(np.concatenate([rects[:, 1], rects[:, 3]]))
    if ys.size < 2:
        return 0.0
    seg_len = np.diff(ys)
    counts = np.zeros(ys.size - 1, dtype=np.int64)
    events = []
    for x1, y1, x2, y2 in rects[:, :4]:
        if x2 <= x1 or y2 <= y1:
            continue
        a = np.searchsorted(ys, y1)
        b = np.searchsorted(ys, y2)
        events.append((x1, 1, a, b))
        events.append((x2, -1, a, b))
    if not events:
        return 0.0
    events.sort(key=lambda e: (e[0], -e[1]))
    area = 0.0
    prev_x = events[0][0]
    for x, delta, a, b in events:
        if x > prev_x:
            area += float(seg_len[counts > 0].sum()) * (x - prev_x)
            prev_x = x
        counts[a:b] += delta
    return area


class UnionArea(SlabProgram):
    """Input rows: (x1, y1, x2, y2, id).  Output: total area (everywhere)."""

    name = "union-area"

    def sample_keys(self, ctx: Context) -> np.ndarray:
        rows = ctx["rows"]
        if not rows.size:
            return np.zeros(0)
        return np.concatenate([rows[:, 0], rows[:, 2]])

    def route_mask(self, rows, splitters, dest, v):
        return interval_slabs(rows[:, 0], rows[:, 2], splitters, dest)

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        rects = self.gather_slab(env)
        lo, hi = slab_bounds(ctx["splitters"], ctx["pid"])
        if rects.size:
            clipped = rects.copy()
            clipped[:, 0] = np.maximum(clipped[:, 0], lo)
            clipped[:, 2] = np.minimum(clipped[:, 2], hi)
            area = union_area_sweep(clipped)
        else:
            area = 0.0
        env.send(0, float(area), tag="area")
        ctx["phase"] = "reduce"
        return False

    def phase_reduce(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            total = sum(float(m.payload) for m in env.messages(tag="area"))
            for dest in range(env.v):
                env.send(dest, total, tag="total")
        ctx["phase"] = "recv"
        return False

    def phase_recv(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="total")
        ctx["area"] = float(msg.payload)
        return True

    def finish(self, ctx: Context):
        return ctx["area"]
