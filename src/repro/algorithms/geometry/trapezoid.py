"""Trapezoidal decomposition and batched planar point location
(Figure 5 Group B rows 1-2: trapezoidal decomposition, next element
search, batched planar point location).

Both share the slab skeleton over a set of **non-crossing** segments:

* :class:`TrapezoidalDecomposition` — inside a slab, between two
  consecutive endpoint abscissae the vertical order of the covering
  segments is fixed, so the decomposition there is the stack of
  trapezoids between vertically adjacent segments; adjacent elementary
  intervals whose (below, above) pair coincides merge into one trapezoid.
* :class:`PointLocation` — queries are routed to their x-slab along with
  the segments; the *next element below* a query is the covering segment
  with the largest y(q.x) not exceeding q.y.

General position assumed (no vertical segments, distinct abscissae).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.geometry.envelope import segment_y_at
from repro.algorithms.geometry.slabs import (
    SlabProgram,
    interval_slabs,
    slab_bounds,
    slab_of,
)
from repro.cgm.program import Context, RoundEnv


class TrapezoidalDecomposition(SlabProgram):
    """Input rows: (x1, y1, x2, y2, id).

    Output per slab: trapezoid rows (x_lo, x_hi, below_id, above_id)
    where -1 denotes the unbounded face.  Trapezoids of one slab are
    disjoint and cover slab x-range between segment endpoints.
    """

    name = "trapezoidal-decomposition"

    def sample_keys(self, ctx: Context) -> np.ndarray:
        rows = ctx["rows"]
        if not rows.size:
            return np.zeros(0)
        return np.concatenate([rows[:, 0], rows[:, 2]])

    def route_mask(self, rows, splitters, dest, v):
        return interval_slabs(rows[:, 0], rows[:, 2], splitters, dest)

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        segs = self.gather_slab(env)
        lo, hi = slab_bounds(ctx["splitters"], ctx["pid"])
        out: list[tuple[float, float, int, int]] = []
        if segs.size:
            xlo = max(lo, float(segs[:, 0].min()))
            xhi = min(hi, float(segs[:, 2].max()))
            xs = np.unique(
                np.clip(np.concatenate([segs[:, 0], segs[:, 2], [xlo, xhi]]), xlo, xhi)
            )
            if xs.size >= 2:
                mids = (xs[:-1] + xs[1:]) / 2
                ys = segment_y_at(segs, mids)
                ids = segs[:, 4].astype(np.int64)
                stacks = []
                for j in range(mids.size):
                    col = ys[:, j]
                    covering = np.isfinite(col)
                    order = np.argsort(col[covering], kind="stable")
                    stack = ids[covering][order]
                    # trapezoids: (-1, s0), (s0, s1), ..., (s_last, -1)
                    walls = np.concatenate(([-1], stack, [-1]))
                    stacks.append(list(zip(walls[:-1], walls[1:])))
                # merge adjacent intervals with identical stacks
                start = 0
                for j in range(1, mids.size + 1):
                    if j == mids.size or stacks[j] != stacks[start]:
                        for below, above in stacks[start]:
                            out.append(
                                (float(xs[start]), float(xs[j]), int(below), int(above))
                            )
                        start = j
        ctx["traps"] = np.asarray(out, dtype=np.float64).reshape(-1, 4)
        return True

    def finish(self, ctx: Context):
        return ctx["traps"]


class PointLocation(SlabProgram):
    """Batched next-element search below query points.

    Input per processor: ``(segments, queries)`` — segment rows
    (x1, y1, x2, y2, id) and query rows (qx, qy, qid).  Queries are
    routed to their x-slab together with the covering segments.  Output
    per slab: (qid, below_seg_id) rows, -1 when no segment lies below.
    """

    name = "point-location"

    def setup(self, ctx: Context, pid, cfg, local_input) -> None:
        segs, queries = local_input
        super().setup(ctx, pid, cfg, np.asarray(segs, dtype=np.float64).reshape(-1, 5))
        ctx["queries"] = np.asarray(queries, dtype=np.float64).reshape(-1, 3)

    def sample_keys(self, ctx: Context) -> np.ndarray:
        rows = ctx["rows"]
        if not rows.size:
            return np.zeros(0)
        return np.concatenate([rows[:, 0], rows[:, 2]])

    def route_mask(self, rows, splitters, dest, v):
        return interval_slabs(rows[:, 0], rows[:, 2], splitters, dest)

    def route_extra(self, ctx: Context, env: RoundEnv, splitters: np.ndarray) -> None:
        queries = ctx.pop("queries")
        if queries.size:
            slabs = slab_of(queries[:, 0], splitters)
            for dest in range(env.v):
                sel = slabs == dest
                if sel.any():
                    env.send(dest, queries[sel], tag="query")

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        segs = self.gather_slab(env)
        msgs = env.messages(tag="query")
        queries = np.vstack([m.payload for m in msgs]) if msgs else np.zeros((0, 3))
        if queries.size:
            if segs.size:
                ys = segment_y_at(segs, queries[:, 0])          # (k, m)
                mask = ys <= queries[:, 1][None, :]
                below = np.where(mask, ys, -np.inf)
                winner = np.argmax(below, axis=0)
                found = np.isfinite(below[winner, np.arange(queries.shape[0])])
                ids = np.where(found, segs[winner, 4].astype(np.int64), -1)
            else:
                ids = np.full(queries.shape[0], -1, dtype=np.int64)
            ctx["answers"] = np.column_stack((queries[:, 2].astype(np.int64), ids))
        else:
            ctx["answers"] = np.zeros((0, 2), dtype=np.int64)
        return True

    def finish(self, ctx: Context):
        return ctx["answers"]


def point_location_reference(segs: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Brute-force next-element-below for tests."""
    out = np.full(queries.shape[0], -1, dtype=np.int64)
    for i, (qx, qy, _qid) in enumerate(queries):
        best = -np.inf
        for x1, y1, x2, y2, sid in segs:
            if x1 <= qx <= x2:
                t = (qx - x1) / (x2 - x1) if x2 != x1 else 0.0
                y = y1 + t * (y2 - y1)
                if best < y <= qy:
                    best = y
                    out[i] = int(sid)
    return out
