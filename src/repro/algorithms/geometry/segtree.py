"""Segment tree construction and batched stabbing queries (Figure 5
Group B row 1: segment tree construction).

:class:`SegmentTree` is a real sequential segment tree (canonical-node
interval storage over the elementary intervals of the endpoint set) —
the optimal local structure the CGM algorithm builds per slab.  The CGM
program routes every interval to the slabs it crosses (clipped) and
every stabbing query to its slab; each slab builds its local tree once
and answers its queries in O(log k + output).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.geometry.slabs import (
    SlabProgram,
    interval_slabs,
    slab_of,
)
from repro.cgm.program import Context, RoundEnv


class SegmentTree:
    """Static segment tree over intervals; stab queries report ids."""

    def __init__(self, intervals: np.ndarray) -> None:
        """*intervals*: rows (lo, hi, id)."""
        intervals = np.asarray(intervals, dtype=np.float64).reshape(-1, 3)
        self.xs = np.unique(np.concatenate([intervals[:, 0], intervals[:, 1]])) if intervals.size else np.zeros(0)
        n_elem = max(1, self.xs.size - 1)
        self.size = 1
        while self.size < n_elem:
            self.size *= 2
        self.nodes: list[list[int]] = [[] for _ in range(2 * self.size)]
        for lo, hi, iid in intervals:
            a = int(np.searchsorted(self.xs, lo))
            b = int(np.searchsorted(self.xs, hi))  # elementary ints [a, b)
            if b <= a:
                b = a + 1
            self._insert(1, 0, self.size, a, min(b, self.size), int(iid))

    def _insert(self, node: int, nlo: int, nhi: int, a: int, b: int, iid: int) -> None:
        if b <= nlo or nhi <= a:
            return
        if a <= nlo and nhi <= b:
            self.nodes[node].append(iid)
            return
        mid = (nlo + nhi) // 2
        self._insert(2 * node, nlo, mid, a, b, iid)
        self._insert(2 * node + 1, mid, nhi, a, b, iid)

    def stab(self, x: float) -> list[int]:
        """Ids of intervals containing x (inclusive ends)."""
        if self.xs.size == 0 or x < self.xs[0] or x > self.xs[-1]:
            return []
        e = int(np.searchsorted(self.xs, x, side="right")) - 1
        e = min(max(e, 0), max(self.xs.size - 2, 0))
        out: list[int] = []
        node = self.size + e
        while node >= 1:
            out.extend(self.nodes[node])
            node //= 2
        return sorted(set(out))

    @property
    def depth(self) -> int:
        import math

        return int(math.log2(self.size)) + 1 if self.size > 1 else 1


class StabbingQueries(SlabProgram):
    """Distributed segment tree + batched stabbing.

    Input per processor: ``(intervals, queries)`` — interval rows
    (lo, hi, id) and query rows (x, qid).  Output per slab: a list of
    ``(qid, ids-array)`` pairs.
    """

    name = "stabbing-queries"

    def setup(self, ctx: Context, pid, cfg, local_input) -> None:
        intervals, queries = local_input
        super().setup(
            ctx, pid, cfg, np.asarray(intervals, dtype=np.float64).reshape(-1, 3)
        )
        ctx["queries"] = np.asarray(queries, dtype=np.float64).reshape(-1, 2)

    def sample_keys(self, ctx: Context) -> np.ndarray:
        rows = ctx["rows"]
        if not rows.size:
            return np.zeros(0)
        return np.concatenate([rows[:, 0], rows[:, 1]])

    def route_mask(self, rows, splitters, dest, v):
        return interval_slabs(rows[:, 0], rows[:, 1], splitters, dest)

    def route_extra(self, ctx: Context, env: RoundEnv, splitters: np.ndarray) -> None:
        queries = ctx.pop("queries")
        if queries.size:
            slabs = slab_of(queries[:, 0], splitters)
            for dest in range(env.v):
                sel = slabs == dest
                if sel.any():
                    env.send(dest, queries[sel], tag="query")

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        intervals = self.gather_slab(env)
        msgs = env.messages(tag="query")
        queries = np.vstack([m.payload for m in msgs]) if msgs else np.zeros((0, 2))
        tree = SegmentTree(intervals if intervals.size else np.zeros((0, 3)))
        answers = []
        for x, qid in queries:
            answers.append((int(qid), np.asarray(tree.stab(float(x)), dtype=np.int64)))
        ctx["answers"] = answers
        ctx["tree_depth"] = tree.depth
        return True

    def finish(self, ctx: Context):
        return ctx["answers"]


def stabbing_reference(intervals: np.ndarray, xs: np.ndarray) -> list[list[int]]:
    """Brute-force stabbing for tests."""
    out = []
    for x in xs:
        ids = [
            int(iid)
            for lo, hi, iid in intervals
            if lo <= x <= hi
        ]
        out.append(sorted(ids))
    return out
