"""3D maxima (Figure 5 Group B row 6) — O(1)-round CGM slab algorithm.

A point p is *maximal* if no other point dominates it in all three
coordinates.  Classic sequential solution: sweep by decreasing x keeping
the (y, z) Pareto staircase.  CGM version: slab-partition by x; each slab
computes its local staircase and ships it to every slab of smaller x
(summaries only — a staircase is the Pareto frontier of the slab, not the
slab's contents); each slab filters its candidates against the received
staircases.

Inputs are assumed in general position (distinct coordinates).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.geometry.slabs import SlabProgram, dominated_mask, local_maxima_sweep
from repro.cgm.program import Context, RoundEnv


class Maxima3D(SlabProgram):
    """Input rows: (x, y, z, global-id).  Output: maximal rows per slab."""

    name = "maxima-3d"

    def phase_local(self, ctx: Context, env: RoundEnv) -> bool:
        pts = self.gather_slab(env)
        if pts.size and pts.shape[1] < 4:
            raise ValueError("Maxima3D expects rows (x, y, z, id)")
        ctx["pts"] = pts
        if pts.size:
            # local maxima: staircase sweep by decreasing x within the slab
            cand = pts[local_maxima_sweep(pts)]
            ctx["cand"] = cand
            # staircase summary of the WHOLE slab = its local maxima's (y,z)
            my_slab = ctx["pid"]
            for dest in range(env.v):
                if dest < my_slab and cand.size:
                    env.send(dest, cand[:, 1:3], tag="stair")
        else:
            ctx["cand"] = pts.reshape(0, 4)
        ctx["phase"] = "filter"
        return False

    def phase_filter(self, ctx: Context, env: RoundEnv) -> bool:
        cand = ctx["cand"]
        stairs = [m.payload for m in env.messages(tag="stair")]
        if cand.size and stairs:
            refs = np.vstack(stairs)
            dom = dominated_mask(cand[:, 1], cand[:, 2], refs[:, 0], refs[:, 1])
            cand = cand[~dom]
        ctx["maxima"] = cand
        return True

    def finish(self, ctx: Context):
        return ctx["maxima"]


def maxima_3d_reference(points: np.ndarray) -> np.ndarray:
    """Brute-force O(n^2) reference used by tests."""
    n = points.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        dom = (points >= points[i]).all(axis=1) & (points > points[i]).any(axis=1)
        if dom.any():
            keep[i] = False
    return np.nonzero(keep)[0]
