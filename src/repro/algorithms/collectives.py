"""Collective communication patterns as small CGM programs and helpers.

CGM communication happens *between* rounds, so a collective is a pattern
spanning rounds rather than a blocking call.  The programs here are used
directly in tests/examples and serve as the smallest non-trivial loads for
the engines; the helpers (:func:`partition_array`, :func:`bucket_by_dest`)
are the partitioning idioms every Figure 5 algorithm uses inside its round
callbacks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv


def partition_array(arr: np.ndarray, v: int) -> list[np.ndarray]:
    """Split *arr* into v nearly equal contiguous slices (CGM input layout).

    The first ``len(arr) % v`` processors receive one extra element, so
    sizes differ by at most one.
    """
    return [np.array(chunk) for chunk in np.array_split(arr, v)]


def slice_bounds(n: int, v: int, pid: int) -> tuple[int, int]:
    """Global [start, end) of processor *pid*'s slice under array_split."""
    base, extra = divmod(n, v)
    start = pid * base + min(pid, extra)
    return start, start + base + (1 if pid < extra else 0)


def owner_of_index(idx: np.ndarray | int, n: int, v: int):
    """Processor owning global index *idx* under the array_split layout."""
    base, extra = divmod(n, v)
    idx = np.asarray(idx)
    cut = extra * (base + 1)
    small = idx < cut
    owner = np.where(
        small,
        idx // max(base + 1, 1),
        extra + (idx - cut) // max(base, 1) if base else extra,
    )
    return owner if owner.ndim else int(owner)


def bucket_by_dest(dests: np.ndarray, payloads: np.ndarray, v: int) -> dict[int, np.ndarray]:
    """Group *payloads* rows by destination processor (vectorized).

    Returns {dest: payload-rows} with empty destinations omitted — the
    all-to-all idiom of every partition-based CGM algorithm.
    """
    order = np.argsort(dests, kind="stable")
    sorted_dests = dests[order]
    sorted_payloads = payloads[order]
    out: dict[int, np.ndarray] = {}
    boundaries = np.searchsorted(sorted_dests, np.arange(v + 1))
    for d in range(v):
        lo, hi = boundaries[d], boundaries[d + 1]
        if hi > lo:
            out[d] = sorted_payloads[lo:hi]
    return out


class Broadcast(CGMProgram):
    """Root sends its value to everyone.  lambda = 1."""

    name = "broadcast"
    kappa = 1.0

    def __init__(self, root: int = 0) -> None:
        self.root = root

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        ctx["pid"] = pid
        ctx["value"] = local_input

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r == 0:
            if ctx["pid"] == self.root:
                for dest in range(env.v):
                    if dest != self.root:
                        env.send(dest, ctx["value"])
            return False
        msgs = env.messages()
        if msgs:
            ctx["value"] = msgs[0].payload
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["value"]


class AllGather(CGMProgram):
    """Everyone ends with the list of all processors' values.  lambda = 1."""

    name = "all-gather"
    kappa = 1.0

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        ctx["pid"] = pid
        ctx["value"] = local_input

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r == 0:
            for dest in range(env.v):
                if dest != ctx["pid"]:
                    env.send(dest, ctx["value"])
            return False
        gathered: list[Any] = [None] * env.v
        gathered[ctx["pid"]] = ctx["value"]
        for m in env.messages():
            gathered[m.src] = m.payload
        ctx["gathered"] = gathered
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["gathered"]


class PrefixSum(CGMProgram):
    """Exclusive prefix sums of one scalar per processor.  lambda = 2.

    Round 0 gathers local sums at processor 0; round 1 scatters each
    processor's exclusive prefix; round 2 records it.
    """

    name = "prefix-sum"
    kappa = 1.0

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        ctx["pid"] = pid
        ctx["value"] = local_input

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        pid = ctx["pid"]
        if r == 0:
            env.send(0, float(ctx["value"]), tag="up")
            return False
        if r == 1:
            if pid == 0:
                vals = [0.0] * env.v
                for m in env.messages(tag="up"):
                    vals[m.src] = m.payload
                acc = 0.0
                for dest in range(env.v):
                    env.send(dest, acc, tag="down")
                    acc += vals[dest]
            return False
        for m in env.messages(tag="down"):
            ctx["prefix"] = m.payload
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["prefix"]


class AllToAll(CGMProgram):
    """Each processor sends a distinct payload to every other processor.

    Used in tests as the canonical full h-relation; ``make_payload(pid,
    dest)`` customizes contents.
    """

    name = "all-to-all"
    kappa = 1.0

    def __init__(self, make_payload=None) -> None:
        self.make_payload = make_payload or (lambda pid, dest: (pid, dest))

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        ctx["pid"] = pid

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r == 0:
            for dest in range(env.v):
                env.send(dest, self.make_payload(ctx["pid"], dest))
            return False
        ctx["received"] = {m.src: m.payload for m in env.messages()}
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["received"]
