"""CGM sorting by deterministic regular sampling (Goodrich-style).

The paper obtains its O(N/(pDB)) sorting result (Theorem 4 / Figure 5
Group A row 1) by simulating a deterministic O(1)-round CGM sort [31].
We implement the classic deterministic *sample sort by regular sampling*:

  round 0   sort locally; pick v regular samples; send them to processor 0
  round 1   processor 0 sorts the v^2 samples, selects v-1 global
            splitters, and broadcasts them
  round 2   partition local data by the splitters; all-to-all so bucket j
            lands on processor j
  round 3   merge the received runs locally — done

lambda = O(1) = 4 communication rounds.  Regular sampling guarantees no
processor receives more than 2N/v items, so the h-relation bound holds.
The sample gather requires v^2 <= N/v, i.e. **N >= v^3 (kappa = 3)** —
within the paper's "kappa <= 3 for all problems examined".

Output convention: processor j ends with global sorted run j (ascending
across processors, sizes in [0, 2N/v]).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv


class SampleSort(CGMProgram):
    """Deterministic CGM sample sort.

    Input: one numpy array per processor.  1-D arrays are sorted by value;
    2-D arrays are sorted *as rows* by the ``key_column`` (stable), which
    is how the geometry and graph algorithms sort records (points, edges)
    by a coordinate.
    """

    name = "sample-sort"
    kappa = 3.0

    def __init__(self, key_column: int = 0) -> None:
        self.key_column = key_column

    def _keys(self, data: np.ndarray) -> np.ndarray:
        return data if data.ndim == 1 else data[:, self.key_column]

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        data = np.asarray(local_input)
        ctx["pid"] = pid
        ctx["data"] = data

    def max_message_items(self, cfg: MachineConfig) -> int:
        # bucket i->j holds at most ~2N/v^2 items after regular sampling,
        # plus the v^2-sample gather at processor 0.
        per_bucket = 4 * max(1, -(-cfg.N // (cfg.v * cfg.v)))
        samples = cfg.v * cfg.v
        return max(per_bucket, samples, 64)

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        pid, v = ctx["pid"], env.v
        if r == 0:
            data = ctx["data"]
            keys = self._keys(data)
            order = np.argsort(keys, kind="stable")
            data = data[order]
            ctx["data"] = data
            n = keys.size
            if n:
                # v regular samples: elements at ranks floor(k*n/v), k=0..v-1
                idx = (np.arange(v, dtype=np.int64) * n) // v
                samples = self._keys(data)[idx]
            else:
                samples = self._keys(data)[:0]
            env.send(0, samples, tag="samples")
            return False

        if r == 1:
            if pid == 0:
                gathered = np.concatenate(
                    [m.payload for m in env.messages(tag="samples")]
                )
                gathered.sort(kind="stable")
                m = gathered.size
                if m >= v and v > 1:
                    idx = (np.arange(1, v, dtype=np.int64) * m) // v
                    splitters = gathered[idx]
                else:
                    splitters = gathered[:0]
                for dest in range(v):
                    env.send(dest, splitters, tag="splitters")
            return False

        if r == 2:
            (msg,) = env.messages(tag="splitters")
            splitters = msg.payload
            data = ctx["data"]
            keys = self._keys(data)
            # data is key-sorted: bucket boundaries by binary search
            bounds = np.searchsorted(keys, splitters, side="right")
            bounds = np.concatenate(([0], bounds, [keys.size]))
            for dest in range(v):
                lo, hi = bounds[dest], bounds[dest + 1]
                if hi > lo or dest == pid:
                    env.send(dest, data[lo:hi], tag="bucket")
            ctx["data"] = data[:0]  # handed off
            return False

        runs = [m.payload for m in env.messages(tag="bucket")]
        if runs:
            merged = np.concatenate(runs)
            order = np.argsort(self._keys(merged), kind="stable")
            merged = merged[order]
        else:
            merged = ctx["data"][:0]
        ctx["sorted"] = merged
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["sorted"]
