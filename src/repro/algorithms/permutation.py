"""Algorithm 4 — CGMPermute.

Permuting N items costs Theta(N) RAM time but
Theta(min(N/D, (N/DB) log_{M/B}(N/B))) I/Os in the general PDM; in the
coarse grained regime the simulated CGM algorithm does it in O(N/(pDB))
I/Os (Figure 5 Group A row 2).  The CGM algorithm itself is one h-relation:

  round 0   each processor sends (destination-index, value) pairs to the
            processor owning each destination index
  round 1   each processor places arrivals in its local output slice — done

Input per processor i: the pair of arrays (V_i, P_i) — values and their
*global* destination indices.  Output: processor i's slice of the permuted
vector (array_split layout).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import bucket_by_dest, owner_of_index, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv


class CGMPermute(CGMProgram):
    """One-round CGM permutation (Algorithm 4 of the paper)."""

    name = "cgm-permute"
    kappa = 2.0

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        values, dest_idx = local_input
        ctx["pid"] = pid
        ctx["values"] = np.asarray(values)
        ctx["dest_idx"] = np.asarray(dest_idx, dtype=np.int64)
        ctx["N"] = cfg.N

    def max_message_items(self, cfg: MachineConfig) -> int:
        # worst case: an adversarial permutation sends a processor's whole
        # slice to one destination — 2N/v items as (index, value) pairs.
        return 4 * max(1, -(-cfg.N // cfg.v))

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        pid, v, N = ctx["pid"], env.v, ctx["N"]
        if r == 0:
            values, dest_idx = ctx["values"], ctx["dest_idx"]
            owners = owner_of_index(dest_idx, N, v)
            pairs = np.column_stack((dest_idx, values.astype(np.int64)))
            for dest, rows in bucket_by_dest(np.asarray(owners), pairs, v).items():
                env.send(dest, rows, tag="perm")
            del ctx["values"], ctx["dest_idx"]
            return False

        lo, hi = slice_bounds(N, v, pid)
        out = np.zeros(hi - lo, dtype=np.int64)
        for m in env.messages(tag="perm"):
            rows = m.payload
            if rows.size:
                out[rows[:, 0].astype(np.int64) - lo] = rows[:, 1]
        ctx["out"] = out
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["out"]
