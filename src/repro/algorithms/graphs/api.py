"""One-call wrappers composing the Group C building blocks.

Each wrapper partitions its input across the ``v`` virtual processors,
runs one or more CGM programs through the selected engine, and assembles
the distributed outputs.  The :class:`GraphResult` carries the combined
cost reports so benchmarks can sum parallel I/Os across pipeline stages —
chained CGM algorithms are themselves CGM algorithms, so the stages'
lambdas (and hence I/O counts) add.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algorithms.collectives import partition_array
from repro.algorithms.graphs.euler_tour import EulerTourBuild
from repro.algorithms.graphs.list_ranking import ListRanking
from repro.cgm.config import MachineConfig
from repro.cgm.metrics import CostReport
from repro.em.runner import em_run
from repro.util.validation import ConfigurationError, require


@dataclass
class GraphResult:
    """Assembled output of a (possibly multi-stage) graph computation."""

    values: Any
    reports: list[CostReport] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_parallel_ios(self) -> int:
        return sum(r.io.parallel_ios for r in self.reports)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.reports)


def _adapt_cfg(cfg: MachineConfig, N: int) -> MachineConfig:
    """Re-target a machine config at a stage's id-space size.

    N may be smaller than v (tiny stages simply leave some virtual
    processors with empty slices).
    """
    return cfg.with_(N=max(N, 1), M=None)


def list_rank(
    succ: np.ndarray,
    cfg: MachineConfig,
    weights: np.ndarray | None = None,
    engine: str | None = None,
) -> GraphResult:
    """Weighted list ranking: rank[i] = sum of weights from i to the tail.

    *succ* is the full successor array (-1 terminates); unit weights (with
    a zero-weight tail) give the distance-to-tail.
    """
    succ = np.asarray(succ, dtype=np.int64)
    n = succ.size
    if weights is None:
        weights = (succ >= 0).astype(np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    require(weights.size == n, "weights must match succ", ConfigurationError)
    stage_cfg = _adapt_cfg(cfg, n)
    inputs = list(zip(partition_array(succ, cfg.v), partition_array(weights, cfg.v)))
    res = em_run(ListRanking(), inputs, stage_cfg, engine)
    return GraphResult(np.concatenate(res.outputs), [res.report])


def euler_tour_positions(
    edges: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    root: int = 0,
    engine: str | None = None,
) -> GraphResult:
    """Euler tour of a tree: position of each directed edge in the tour.

    *edges* is an (E, 2) array of undirected tree edges; directed edge
    ``2e`` is edges[e] traversed u->v and ``2e+1`` the reverse.  Returns
    positions in [0, 2E), starting at the root.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    E = edges.shape[0]
    require(E >= 1, "need at least one edge", ConfigurationError)
    n_dir = 2 * E
    rows = np.column_stack((np.arange(E), edges))
    stage_cfg = _adapt_cfg(cfg, n_dir)

    build = em_run(
        EulerTourBuild(n_vertices, root),
        partition_array(rows, cfg.v),
        stage_cfg,
        engine,
    )
    succ = np.concatenate(build.outputs)

    rank = list_rank(succ, cfg, engine=engine)
    positions = (n_dir - 1) - rank.values.astype(np.int64)
    return GraphResult(
        positions,
        [build.report, *rank.reports],
        extra={"succ": succ},
    )


def tree_measures(
    edges: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    root: int = 0,
    engine: str | None = None,
) -> GraphResult:
    """Depth, preorder number, subtree size and parent of every vertex.

    Three list-ranking passes over the Euler tour (positions, depth
    prefix-sums, preorder prefix-sums) — the standard reduction, each pass
    an O(log v)-round CGM computation.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    E = edges.shape[0]
    tour = euler_tour_positions(edges, n_vertices, cfg, root, engine)
    pos = tour.values
    succ = tour.extra["succ"]
    n_dir = 2 * E

    # down edge: traversed parent -> child, i.e. before its reversal
    down = pos < pos[np.arange(n_dir) ^ 1]

    # depth prefix sums: +1 on down edges, -1 on up edges
    depth_w = np.where(down, 1.0, -1.0)
    depth_rank = list_rank(succ, cfg, weights=depth_w, engine=engine)
    # inclusive prefix at edge i = total - rank(i) + w(i); total = 0
    depth_prefix = -depth_rank.values + depth_w

    # preorder prefix sums: count down edges
    pre_w = down.astype(np.float64)
    pre_rank = list_rank(succ, cfg, weights=pre_w, engine=engine)
    pre_prefix = E - pre_rank.values + pre_w

    heads = np.empty(n_dir, dtype=np.int64)  # head vertex of each directed edge
    heads[0::2] = edges[:, 1]
    heads[1::2] = edges[:, 0]
    tails = np.empty(n_dir, dtype=np.int64)
    tails[0::2] = edges[:, 0]
    tails[1::2] = edges[:, 1]

    depth = np.zeros(n_vertices, dtype=np.int64)
    preorder = np.zeros(n_vertices, dtype=np.int64)
    size = np.zeros(n_vertices, dtype=np.int64)
    parent = np.full(n_vertices, -1, dtype=np.int64)

    d_idx = np.nonzero(down)[0]
    child = heads[d_idx]
    depth[child] = depth_prefix[d_idx].astype(np.int64)
    preorder[child] = pre_prefix[d_idx].astype(np.int64)
    parent[child] = tails[d_idx]
    # subtree size from the tour span between the down edge and its reversal
    size[child] = (pos[d_idx ^ 1] - pos[d_idx] + 1) // 2
    size[root] = n_vertices
    preorder[root] = 0
    depth[root] = 0

    return GraphResult(
        {
            "depth": depth,
            "preorder": preorder,
            "size": size,
            "parent": parent,
            "positions": pos,
            "down": down,
        },
        tour.reports + depth_rank.reports + pre_rank.reports,
    )


def connected_components(
    edges: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GraphResult:
    """Component id (= minimum vertex id of the component) per vertex.

    *edges* is an (E, 2) array of undirected edges; isolated vertices get
    their own id.  ``extra["forest"]`` holds the spanning-forest edge
    indices.
    """
    from repro.algorithms.graphs.connectivity import ConnectedComponents

    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    E = edges.shape[0]
    rows = np.column_stack((np.arange(E), edges))
    stage_cfg = _adapt_cfg(cfg, n_vertices)
    res = em_run(
        ConnectedComponents(n_vertices),
        partition_array(rows, cfg.v),
        stage_cfg,
        engine,
    )
    comp = np.concatenate([out[0] for out in res.outputs])
    forest = sorted(eid for out in res.outputs for eid in out[1])
    return GraphResult(comp, [res.report], extra={"forest": forest})


def spanning_forest(
    edges: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GraphResult:
    """Indices into *edges* forming a spanning forest (one tree per
    component)."""
    res = connected_components(edges, n_vertices, cfg, engine)
    return GraphResult(res.extra["forest"], res.reports, extra={"comp": res.values})


def scatter_reduce(
    rows: np.ndarray,
    n_keys: int,
    cfg: MachineConfig,
    op: str = "min",
    engine: str | None = None,
) -> GraphResult:
    """Fold int64 (key, value) pairs per key (min/max/sum); one round."""
    from repro.algorithms.graphs.scatter import ScatterReduce

    rows = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
    stage_cfg = _adapt_cfg(cfg, n_keys)
    res = em_run(ScatterReduce(op), partition_array(rows, cfg.v), stage_cfg, engine)
    return GraphResult(np.concatenate(res.outputs)[:n_keys], [res.report])


def range_min_queries(
    values: np.ndarray,
    queries: np.ndarray,
    cfg: MachineConfig,
    payload: np.ndarray | None = None,
    engine: str | None = None,
) -> GraphResult:
    """Batched RMQ: queries (qid, l, r) -> (qid, min value, payload@argmin)."""
    from repro.algorithms.graphs.rmq import RangeMin

    values = np.asarray(values, dtype=np.int64)
    queries = np.asarray(queries, dtype=np.int64).reshape(-1, 3)
    if payload is None:
        payload = np.zeros_like(values)
    stage_cfg = _adapt_cfg(cfg, values.size)
    inputs = list(
        zip(
            partition_array(values, cfg.v),
            partition_array(payload, cfg.v),
            partition_array(queries, cfg.v),
        )
    )
    res = em_run(RangeMin(), inputs, stage_cfg, engine)
    rows = np.vstack([o for o in res.outputs if o.size]) if queries.size else np.zeros((0, 3), np.int64)
    order = np.argsort(rows[:, 0], kind="stable") if rows.size else slice(None)
    return GraphResult(rows[order] if rows.size else rows, [res.report])


def lowest_common_ancestors(
    edges: np.ndarray,
    queries: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    root: int = 0,
    engine: str | None = None,
) -> GraphResult:
    """Batched LCA on a tree: queries (u, w) -> lca vertex.

    The standard reduction: Euler tour -> depth sequence -> range-minimum
    between first occurrences.  Both stages are O(1)/O(log v)-round CGM
    computations.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    queries = np.asarray(queries, dtype=np.int64).reshape(-1, 2)
    E = edges.shape[0]
    tm = tree_measures(edges, n_vertices, cfg, root, engine)
    vals = tm.values
    pos, down = vals["positions"], vals["down"]
    depth = vals["depth"]

    n_dir = 2 * E
    heads = np.empty(n_dir, dtype=np.int64)
    heads[0::2] = edges[:, 1]
    heads[1::2] = edges[:, 0]

    # Euler vertex sequence with the root prepended at position 0
    seq = np.empty(n_dir + 1, dtype=np.int64)
    seq[0] = root
    order_at = np.empty(n_dir, dtype=np.int64)
    order_at[pos] = np.arange(n_dir)
    seq[1:] = heads[order_at]
    depth_seq = depth[seq]

    first = np.zeros(n_vertices, dtype=np.int64)
    d_idx = np.nonzero(down)[0]
    first[heads[d_idx]] = pos[d_idx] + 1
    first[root] = 0

    lo = np.minimum(first[queries[:, 0]], first[queries[:, 1]])
    hi = np.maximum(first[queries[:, 0]], first[queries[:, 1]])
    qrows = np.column_stack((np.arange(queries.shape[0]), lo, hi))

    rmq = range_min_queries(depth_seq, qrows, cfg, payload=seq, engine=engine)
    lca = rmq.values[:, 2]
    return GraphResult(lca, tm.reports + rmq.reports, extra={"measures": vals})


def expression_eval(
    parent: np.ndarray,
    op: np.ndarray,
    leaf_value: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GraphResult:
    """Evaluate a (+, *) expression tree by CGM rake-and-compress.

    ``parent[i] = -1`` marks the root; ``op`` uses OP_ADD / OP_MUL from
    :mod:`repro.algorithms.graphs.tree_contraction`; ``leaf_value`` is
    read at the leaves.
    """
    from repro.algorithms.collectives import slice_bounds
    from repro.algorithms.graphs.tree_contraction import ExpressionEval

    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    stage_cfg = _adapt_cfg(cfg, n)
    inputs = []
    for pid in range(cfg.v):
        lo, hi = slice_bounds(n, cfg.v, pid)
        inputs.append((parent[lo:hi], np.asarray(op)[lo:hi], np.asarray(leaf_value)[lo:hi]))
    res = em_run(ExpressionEval(), inputs, stage_cfg, engine)
    return GraphResult(res.outputs[0], [res.report])
