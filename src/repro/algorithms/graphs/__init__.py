"""Group C of Figure 5: CGM graph algorithms.

All are built from two primitives, exactly as the PRAM/CGM literature the
paper simulates:

* **list ranking** (:mod:`repro.algorithms.graphs.list_ranking`) —
  independent-set contraction in O(log v) expected rounds;
* **Euler tour** (:mod:`repro.algorithms.graphs.euler_tour`) — tree
  linearization, which with weighted list ranking yields depths, preorder
  numbers and subtree sizes.

On top of those: connected components / spanning forest
(:mod:`repro.algorithms.graphs.connectivity`), batched LCA via distributed
range-minimum (:mod:`repro.algorithms.graphs.lca`), tree contraction /
expression-tree evaluation (:mod:`repro.algorithms.graphs.tree_contraction`),
and open-ear decomposition / biconnected components
(:mod:`repro.algorithms.graphs.biconnectivity`).

High-level one-call wrappers live in :mod:`repro.algorithms.graphs.api`.
"""

from repro.algorithms.graphs.api import (
    connected_components,
    euler_tour_positions,
    expression_eval,
    list_rank,
    lowest_common_ancestors,
    range_min_queries,
    scatter_reduce,
    spanning_forest,
    tree_measures,
)
from repro.algorithms.graphs.biconnectivity import (
    biconnected_components,
    ear_decomposition,
    low_high,
)

__all__ = [
    "biconnected_components",
    "connected_components",
    "ear_decomposition",
    "euler_tour_positions",
    "expression_eval",
    "list_rank",
    "low_high",
    "lowest_common_ancestors",
    "range_min_queries",
    "scatter_reduce",
    "spanning_forest",
    "tree_measures",
]
