"""CGM connected components and spanning forest (Figure 5 Group C row 2).

Hook-and-contract in the Shiloach–Vishkin style, with the CGM twist the
paper's sources use: once the surviving cross-edge count drops below
N/v the remainder is gathered on processor 0 and finished with a local
union-find, capping the number of rounds.

Every vertex x maintains ``parent[x]`` at its owner; hooking always
attaches a root to a strictly smaller label, so parent chains decrease
and the root of every tree is the **minimum vertex id of its component**
— which is therefore the component id this program outputs.

Per iteration (constant number of h-relations):

1. every live edge looks up the current labels of its endpoints,
2. relabels itself, drops self-loops, and proposes
   ``hook(max(pa,pb) -> min(pa,pb))``; owners apply the smallest proposal
   to root vertices (recording the proposing edge — those edges form the
   spanning forest),
3. one pointer-jumping step shortcuts parent chains,
4. processor 0 tallies surviving cross edges and broadcasts
   continue / gather.

After the gather, vertices resolve their final component by root-finding
with path-halving (O(log depth) rounds).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import owner_of_index, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.util.validation import SimulationError


class _DSU:
    """Union-find with min-label roots (processor 0's local finish)."""

    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        p = self.parent.setdefault(x, x)
        while p != x:
            gp = self.parent.setdefault(p, p)
            self.parent[x] = gp
            x, p = p, self.parent.setdefault(gp, gp)
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        lo, hi = min(ra, rb), max(ra, rb)
        self.parent[hi] = lo
        return True


class ConnectedComponents(CGMProgram):
    """Connected components + spanning forest of an undirected graph.

    Input per processor: an (k, 3) int64 array of rows ``(eid, a, b)``
    (eids globally unique).  ``cfg.N`` must be the vertex-id space size.

    Output per processor: ``(comp_slice, forest_eids)`` — component ids
    for its owned vertex slice and the hook edges it recorded.
    """

    name = "connected-components"
    kappa = 2.0

    def __init__(self, n_vertices: int, gather_threshold: int | None = None) -> None:
        self.n_vertices = n_vertices
        self.gather_threshold = gather_threshold

    # ------------------------------------------------------------------ setup

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        edges = np.asarray(local_input, dtype=np.int64).reshape(-1, 3)
        if self.n_vertices != cfg.N:
            raise SimulationError("cfg.N must equal the vertex-id space size")
        lo, hi = slice_bounds(self.n_vertices, cfg.v, pid)
        ctx["pid"] = pid
        ctx["lo"] = lo
        ctx["n"] = self.n_vertices
        ctx["edges"] = edges                      # live edges (eid, a, b) in current labels
        ctx["parent"] = np.arange(lo, hi, dtype=np.int64)
        ctx["forest"] = []                        # eids of hook edges recorded here
        ctx["comp"] = np.full(hi - lo, -1, dtype=np.int64)
        ctx["comp_hint"] = {}                     # root label -> component id
        ctx["phase"] = "query"
        threshold = self.gather_threshold
        if threshold is None:
            threshold = max(4, self.n_vertices // cfg.v)
        ctx["threshold"] = threshold

    # ---------------------------------------------------------------- helpers

    def _route(self, env: RoundEnv, ctx: Context, rows: np.ndarray, tag: str) -> None:
        if rows.size == 0:
            return
        owners = np.asarray(
            owner_of_index(rows[:, 0], ctx["n"], env.v), dtype=np.int64
        )
        order = np.argsort(owners, kind="stable")
        rows, owners = rows[order], owners[order]
        bounds = np.searchsorted(owners, np.arange(env.v + 1))
        for d in range(env.v):
            a, b = bounds[d], bounds[d + 1]
            if b > a:
                env.send(d, rows[a:b], tag=tag)

    @staticmethod
    def _rows(env: RoundEnv, tag: str, width: int) -> np.ndarray:
        msgs = env.messages(tag=tag)
        if not msgs:
            return np.zeros((0, width), dtype=np.int64)
        return np.vstack([m.payload for m in msgs]).astype(np.int64)

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        return getattr(self, f"_phase_{ctx['phase']}")(ctx, env)

    # --------------------------------------------------------- iteration body

    def _phase_query(self, ctx: Context, env: RoundEnv) -> bool:
        """Ask the owners of edge endpoints for current parent labels."""
        edges = ctx["edges"]
        if edges.size:
            verts = np.unique(edges[:, 1:3])
            rows = np.column_stack((verts, np.full(verts.size, ctx["pid"])))
            self._route(env, ctx, rows, tag="pq")
        ctx["phase"] = "reply"
        return False

    def _phase_reply(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "pq", 2)
        if rows.size:
            parents = ctx["parent"][rows[:, 0] - ctx["lo"]]
            for pid_req in np.unique(rows[:, 1]):
                mask = rows[:, 1] == pid_req
                env.send(
                    int(pid_req),
                    np.column_stack((rows[mask, 0], parents[mask])),
                    tag="pr",
                )
        ctx["phase"] = "hook"
        return False

    def _phase_hook(self, ctx: Context, env: RoundEnv) -> bool:
        """Relabel edges, drop self loops; propose hooks (or gather)."""
        rows = self._rows(env, "pr", 2)
        label = {int(vtx): int(par) for vtx, par in rows}
        edges = ctx["edges"]
        if edges.size:
            a = np.array([label[int(x)] for x in edges[:, 1]], dtype=np.int64)
            b = np.array([label[int(x)] for x in edges[:, 2]], dtype=np.int64)
            keep = a != b
            edges = np.column_stack((edges[keep, 0], a[keep], b[keep]))
            ctx["edges"] = edges
        if ctx.get("mode") == "gather":
            if edges.size:
                env.send(0, edges, tag="gedges")
            ctx["phase"] = "solve"
            return False
        if edges.size:
            hi = np.maximum(edges[:, 1], edges[:, 2])
            lo_ = np.minimum(edges[:, 1], edges[:, 2])
            self._route(
                env, ctx, np.column_stack((hi, lo_, edges[:, 0])), tag="hook"
            )
        ctx["phase"] = "jump_send"
        return False

    def _phase_jump_send(self, ctx: Context, env: RoundEnv) -> bool:
        """Apply hook proposals, then flatten trees by pointer jumping.

        The hook labels are roots only because trees are fully flattened
        at the end of every iteration; hooking a root to a *root* that is
        strictly smaller makes mutual hooks (and hence cycles among the
        recorded forest edges) impossible.
        """
        rows = self._rows(env, "hook", 3)
        lo = ctx["lo"]
        parent = ctx["parent"]
        if rows.size:
            # smallest candidate per vertex wins; only roots hook
            order = np.lexsort((rows[:, 1], rows[:, 0]))
            rows = rows[order]
            first = np.concatenate(([True], np.diff(rows[:, 0]) != 0))
            for vtx, cand, eid in rows[first]:
                i = vtx - lo
                if parent[i] == vtx and cand < vtx:
                    parent[i] = cand
                    ctx["forest"].append(int(eid))
        # pointer jump: ask owner(parent[x]) for its parent
        idx = np.nonzero(parent != np.arange(lo, lo + parent.size))[0]
        if idx.size:
            rows = np.column_stack((parent[idx], idx + lo))
            self._route(env, ctx, rows, tag="jq")
        ctx["phase"] = "jump_reply"
        return False

    def _phase_jump_reply(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "jq", 2)
        if rows.size:
            gp = ctx["parent"][rows[:, 0] - ctx["lo"]]
            self._route(env, ctx, np.column_stack((rows[:, 1], gp)), tag="jr")
        ctx["phase"] = "jump_apply"
        return False

    def _phase_jump_apply(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "jr", 2)
        changed = 0
        if rows.size:
            idx = rows[:, 0] - ctx["lo"]
            before = ctx["parent"][idx]
            ctx["parent"][idx] = rows[:, 1]
            changed = int((before != rows[:, 1]).sum())
        env.send(0, changed, tag="jcount")
        ctx["phase"] = "jump_decide"
        return False

    def _phase_jump_decide(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            total = sum(int(m.payload) for m in env.messages(tag="jcount"))
            decision = "flat" if total == 0 else "again"
            for dest in range(env.v):
                env.send(dest, decision, tag="jdecision")
        ctx["phase"] = "jump_branch"
        return False

    def _phase_jump_branch(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="jdecision")
        if msg.payload == "again":
            # another jump level: re-send grandparent queries
            lo = ctx["lo"]
            parent = ctx["parent"]
            idx = np.nonzero(parent != np.arange(lo, lo + parent.size))[0]
            if idx.size:
                rows = np.column_stack((parent[idx], idx + lo))
                self._route(env, ctx, rows, tag="jq")
            ctx["phase"] = "jump_reply"
            return False
        return self._phase_count(ctx, env)

    def _phase_count(self, ctx: Context, env: RoundEnv) -> bool:
        env.send(0, int(ctx["edges"].shape[0]), tag="ecount")
        ctx["phase"] = "decide"
        return False

    def _phase_decide(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            total = sum(int(m.payload) for m in env.messages(tag="ecount"))
            decision = "gather" if total <= ctx["threshold"] else "contract"
            for dest in range(env.v):
                env.send(dest, decision, tag="decision")
        ctx["phase"] = "branch"
        return False

    def _phase_branch(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="decision")
        if msg.payload == "contract":
            return self._phase_query(ctx, env)
        # gather path: edges still carry the labels of the *previous*
        # relabel — refresh them first, or processor 0's union-find would
        # re-union trees already joined by this iteration's hooks and
        # record duplicate forest edges (creating cycles).
        ctx["mode"] = "gather"
        return self._phase_query(ctx, env)

    # ------------------------------------------------------------- the finish

    def _phase_solve(self, ctx: Context, env: RoundEnv) -> bool:
        """Processor 0: union-find over gathered edges, scatter hints."""
        if ctx["pid"] == 0:
            rows = self._rows(env, "gedges", 3)
            dsu = _DSU()
            for eid, a, b in rows:
                if dsu.union(int(a), int(b)):
                    ctx["forest"].append(int(eid))
            hints = [(x, dsu.find(x)) for x in dsu.parent]
            if hints:
                self._route(
                    env, ctx, np.asarray(hints, dtype=np.int64), tag="hint"
                )
        ctx["phase"] = "resolve_send"
        return False

    def _phase_resolve_send(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "hint", 2)
        hint = ctx["comp_hint"]
        if rows.size:
            for label, comp in rows:
                hint[int(label)] = int(comp)
        lo = ctx["lo"]
        parent, comp = ctx["parent"], ctx["comp"]
        ids = np.arange(lo, lo + parent.size)
        roots = parent == ids
        for i in np.nonzero(roots & (comp < 0))[0]:
            comp[i] = hint.get(int(ids[i]), int(ids[i]))
        unresolved = np.nonzero(comp < 0)[0]
        if unresolved.size:
            rows = np.column_stack((parent[unresolved], unresolved + lo))
            self._route(env, ctx, rows, tag="rq")
        env.send(0, int(unresolved.size), tag="rcount")
        ctx["phase"] = "resolve_reply"
        return False

    def _phase_resolve_reply(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "rq", 2)
        if rows.size:
            lo = ctx["lo"]
            idx = rows[:, 0] - lo
            comp = ctx["comp"][idx]
            parent = ctx["parent"][idx]
            # reply (asker, flag, value): resolved components beat parents
            reply = np.column_stack(
                (rows[:, 1], (comp >= 0).astype(np.int64), np.where(comp >= 0, comp, parent))
            )
            self._route(env, ctx, reply, tag="rr")
        if ctx["pid"] == 0:
            pending = sum(int(m.payload) for m in env.messages(tag="rcount"))
            for dest in range(env.v):
                env.send(dest, "done" if pending == 0 else "again", tag="rdecision")
        ctx["phase"] = "resolve_apply"
        return False

    def _phase_resolve_apply(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "rr", 2 + 1)
        lo = ctx["lo"]
        if rows.size:
            idx = rows[:, 0] - lo
            resolved = rows[:, 1] == 1
            ctx["comp"][idx[resolved]] = rows[resolved, 2]
            # path halving for the rest
            ctx["parent"][idx[~resolved]] = rows[~resolved, 2]
        (msg,) = env.messages(tag="rdecision")
        if msg.payload == "done" and not (ctx["comp"] < 0).any():
            ctx["phase"] = "done"
            return True
        return self._phase_resolve_send(ctx, env)

    def _phase_done(self, ctx: Context, env: RoundEnv) -> bool:
        return True

    def finish(self, ctx: Context) -> Any:
        if (ctx["comp"] < 0).any():
            raise SimulationError("connected components finished unresolved")
        return ctx["comp"], sorted(ctx["forest"])
