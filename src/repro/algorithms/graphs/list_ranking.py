"""CGM list ranking by deterministic-schedule randomized contraction.

Figure 5 Group C row 1: list ranking in O((N log v)/(pDB)) I/Os, obtained
by simulating a CGM algorithm with lambda = O(log v) rounds.  The
algorithm is the standard independent-set contraction:

1. build predecessor pointers (one h-relation);
2. repeat: every interior node flips a coin; a node is *spliced out* iff
   it flipped heads and its successor flipped tails (an independent set —
   no two adjacent nodes are ever spliced together); splicing forwards
   the node's edge weight to its predecessor.  Each iteration removes
   ~1/4 of the interior nodes, so after O(log v) iterations at most
   N/v nodes remain;
3. gather the contracted list on processor 0, rank it locally;
4. expand: removed nodes recover their rank level by level in reverse —
   rank(u) = rank(successor-at-removal) + weight-at-removal.

Ranks are **weighted suffix sums**: rank(u) = sum of the weights of the
links from u to the tail.  With unit weights this is the distance to the
tail; with arbitrary weights it computes suffix sums over the list, which
is how the Euler-tour machinery derives depths and preorder numbers.

Node ids are 0..N-1; node i is owned by processor ``owner_of_index(i)``.
Input per processor: ``(succ, weight)`` arrays for its slice (successor
id, or -1 for the tail).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import owner_of_index, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.util.validation import SimulationError


class ListRanking(CGMProgram):
    """Weighted list ranking (suffix sums along a linked list)."""

    name = "list-ranking"
    kappa = 2.0

    def __init__(self, gather_threshold: int | None = None) -> None:
        #: contract until at most this many nodes remain (default N/v)
        self.gather_threshold = gather_threshold

    # ------------------------------------------------------------------ setup

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        succ, weight = local_input
        succ = np.asarray(succ, dtype=np.int64)
        n_nodes = cfg.N
        lo, hi = slice_bounds(n_nodes, cfg.v, pid)
        if succ.size != hi - lo:
            raise SimulationError(
                f"processor {pid} expected {hi - lo} nodes, got {succ.size}"
            )
        ctx["pid"] = pid
        ctx["lo"] = lo
        ctx["n_nodes"] = n_nodes
        ctx["succ"] = succ.copy()
        ctx["pred"] = np.full(succ.size, -1, dtype=np.int64)
        ctx["w"] = np.asarray(weight, dtype=np.float64).copy()
        ctx["alive"] = np.ones(succ.size, dtype=bool)
        ctx["rank"] = np.full(succ.size, np.nan)
        ctx["removed"] = {}          # local idx -> (level, succ_at_removal, w_at_removal)
        ctx["phase"] = "setup"
        ctx["level"] = 0             # contraction iteration counter
        threshold = self.gather_threshold
        if threshold is None:
            threshold = max(2, n_nodes // cfg.v)
        ctx["threshold"] = threshold

    # ---------------------------------------------------------------- helpers

    @staticmethod
    def _owner(ctx: Context, node: int, v: int) -> int:
        return int(owner_of_index(node, ctx["n_nodes"], v))

    @staticmethod
    def _send_grouped(env: RoundEnv, ctx: Context, rows: np.ndarray, tag: str, key_col: int = 0) -> None:
        """Route rows to the owners of the node ids in column *key_col*."""
        if rows.size == 0:
            return
        owners = owner_of_index(rows[:, key_col], ctx["n_nodes"], env.v)
        order = np.argsort(owners, kind="stable")
        rows = rows[order]
        owners = np.asarray(owners)[order]
        bounds = np.searchsorted(owners, np.arange(env.v + 1))
        for d in range(env.v):
            a, b = bounds[d], bounds[d + 1]
            if b > a:
                env.send(d, rows[a:b], tag=tag)

    def _gather_rows(self, env: RoundEnv, tag: str, width: int) -> np.ndarray:
        msgs = env.messages(tag=tag)
        if not msgs:
            return np.zeros((0, width))
        return np.vstack([m.payload for m in msgs])

    # ------------------------------------------------------------------ rounds

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        phase = ctx["phase"]
        handler = getattr(self, f"_phase_{phase}")
        return handler(ctx, env)

    # phase: setup — announce predecessors, report live counts
    def _phase_setup(self, ctx: Context, env: RoundEnv) -> bool:
        succ, lo = ctx["succ"], ctx["lo"]
        idx = np.nonzero(succ >= 0)[0]
        if idx.size:
            rows = np.column_stack((succ[idx], idx + lo)).astype(np.int64)
            self._send_grouped(env, ctx, rows, tag="pred")
        env.send(0, int(ctx["alive"].sum()), tag="count")
        ctx["phase"] = "plan"
        return False

    # phase: plan — receive predecessor notices; proc 0 decides contract/gather
    def _phase_plan(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._gather_rows(env, "pred", 2).astype(np.int64)
        if rows.size:
            ctx["pred"][rows[:, 0] - ctx["lo"]] = rows[:, 1]
        self._decide(ctx, env)
        ctx["phase"] = "coins"
        return False

    def _decide(self, ctx: Context, env: RoundEnv) -> None:
        """Processor 0 tallies live counts and broadcasts the decision."""
        if ctx["pid"] == 0:
            total = sum(int(m.payload) for m in env.messages(tag="count"))
            decision = "gather" if total <= ctx["threshold"] else "contract"
            for dest in range(env.v):
                env.send(dest, decision, tag="decision")

    # phase: coins — act on the decision; flip coins or start the gather
    def _phase_coins(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="decision")
        if msg.payload == "gather":
            alive = np.nonzero(ctx["alive"])[0]
            lo = ctx["lo"]
            rows = np.column_stack(
                (
                    alive + lo,
                    ctx["succ"][alive],
                    ctx["w"][alive],
                )
            ).astype(np.float64)
            env.send(0, rows, tag="gathered")
            ctx["phase"] = "solve"
            return False

        alive = ctx["alive"]
        coins = np.zeros(alive.size, dtype=bool)
        live_idx = np.nonzero(alive)[0]
        coins[live_idx] = env.rng.random(live_idx.size) < 0.5
        ctx["coins"] = coins
        # tell each predecessor our coin, so it can test H(self) & T(succ)
        has_pred = live_idx[ctx["pred"][live_idx] >= 0]
        if has_pred.size:
            rows = np.column_stack(
                (ctx["pred"][has_pred], coins[has_pred].astype(np.int64))
            ).astype(np.int64)
            self._send_grouped(env, ctx, rows, tag="coin")
        ctx["phase"] = "splice"
        return False

    # phase: splice — select the independent set and send pointer updates
    def _phase_splice(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        succ_coin = np.full(ctx["succ"].size, -1, dtype=np.int64)
        rows = self._gather_rows(env, "coin", 2).astype(np.int64)
        if rows.size:
            succ_coin[rows[:, 0] - lo] = rows[:, 1]

        coins = ctx.pop("coins")
        alive, succ, pred, w = ctx["alive"], ctx["succ"], ctx["pred"], ctx["w"]
        selected = (
            alive
            & coins                      # heads
            & (succ_coin == 0)           # successor flipped tails
            & (pred >= 0)                # not the head
            & (succ >= 0)                # not the tail
        )
        sel = np.nonzero(selected)[0]
        level = ctx["level"]
        removed = ctx["removed"]
        if sel.size:
            # records for the expansion phase
            for i in sel:
                removed[int(i)] = (level, int(succ[i]), float(w[i]))
            # pred.succ <- succ(u); pred.w += w(u)
            pred_rows = np.column_stack((pred[sel], succ[sel], w[sel]))
            self._send_grouped(env, ctx, pred_rows, tag="fix-succ")
            # succ.pred <- pred(u)
            succ_rows = np.column_stack((succ[sel], pred[sel])).astype(np.int64)
            self._send_grouped(env, ctx, succ_rows, tag="fix-pred")
            alive[sel] = False
        ctx["phase"] = "update"
        return False

    # phase: update — apply pointer updates, report live counts
    def _phase_update(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        fix_succ = self._gather_rows(env, "fix-succ", 3)
        if fix_succ.size:
            idx = fix_succ[:, 0].astype(np.int64) - lo
            ctx["succ"][idx] = fix_succ[:, 1].astype(np.int64)
            ctx["w"][idx] += fix_succ[:, 2]
        fix_pred = self._gather_rows(env, "fix-pred", 2).astype(np.int64)
        if fix_pred.size:
            ctx["pred"][fix_pred[:, 0] - lo] = fix_pred[:, 1]
        env.send(0, int(ctx["alive"].sum()), tag="count")
        ctx["level"] += 1
        ctx["phase"] = "replan"
        return False

    # phase: replan — proc 0 broadcasts the next decision
    def _phase_replan(self, ctx: Context, env: RoundEnv) -> bool:
        self._decide(ctx, env)
        ctx["phase"] = "coins"
        return False

    # phase: solve — proc 0 ranks the contracted list, scatters ranks
    def _phase_solve(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            rows = self._gather_rows(env, "gathered", 3)
            if rows.size:
                ids = rows[:, 0].astype(np.int64)
                succ = rows[:, 1].astype(np.int64)
                weight = rows[:, 2]
                pos = {int(u): k for k, u in enumerate(ids)}
                # find the head: the live node nobody points to
                pointed = set(int(s) for s in succ if s >= 0)
                heads = [int(u) for u in ids if int(u) not in pointed]
                if len(heads) != 1:
                    raise SimulationError(
                        f"contracted list has {len(heads)} heads — input was "
                        "not a single linked list"
                    )
                # walk head -> tail, then suffix-sum the weights
                order = []
                u = heads[0]
                while u >= 0:
                    order.append(u)
                    u = int(succ[pos[u]])
                if len(order) != ids.size:
                    raise SimulationError("contracted list contains a cycle")
                ranks = {}
                acc = 0.0
                for u in reversed(order):
                    k = pos[u]
                    ranks[u] = acc  # suffix sum *below* u ... adjusted next
                    acc += weight[k]
                # rank(u) = sum of weights from u to tail = acc_after - w? No:
                # define rank(u) = suffix sum of weights starting at u's link
                # chain: rank(tail) = w(tail) (= 0 for unit tail weight 0).
                # We computed ranks[u] = sum of weights of nodes strictly
                # after u in the order; the weight of u's own link belongs
                # to u's rank:
                for u in order:
                    ranks[u] += weight[pos[u]]
                out_rows = np.column_stack(
                    (ids.astype(np.float64), np.array([ranks[int(u)] for u in ids]))
                )
                self._send_grouped_float(env, ctx, out_rows, tag="rank")
        ctx["phase"] = "ranks"
        return False

    def _send_grouped_float(self, env: RoundEnv, ctx: Context, rows: np.ndarray, tag: str) -> None:
        owners = owner_of_index(rows[:, 0].astype(np.int64), ctx["n_nodes"], env.v)
        order = np.argsort(owners, kind="stable")
        rows = rows[order]
        owners = np.asarray(owners)[order]
        bounds = np.searchsorted(owners, np.arange(env.v + 1))
        for d in range(env.v):
            a, b = bounds[d], bounds[d + 1]
            if b > a:
                env.send(d, rows[a:b], tag=tag)

    # phase: ranks — receive base ranks; begin the expansion
    def _phase_ranks(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._gather_rows(env, "rank", 2)
        if rows.size:
            idx = rows[:, 0].astype(np.int64) - ctx["lo"]
            ctx["rank"][idx] = rows[:, 1]
        ctx["expand_level"] = ctx["level"] - 1
        return self._expand_send(ctx, env)

    def _expand_send(self, ctx: Context, env: RoundEnv) -> bool:
        """Send rank queries for nodes removed at the current level."""
        level = ctx["expand_level"]
        if level < 0:
            ctx["phase"] = "done"
            return True
        lo = ctx["lo"]
        queries = [
            (s, i + lo)
            for i, (lvl, s, _w) in ctx["removed"].items()
            if lvl == level
        ]
        if queries:
            rows = np.array(queries, dtype=np.int64)
            self._send_grouped(env, ctx, rows, tag="rank-query")
        ctx["phase"] = "expand_reply"
        return False

    # phase: expand_reply — answer rank queries
    def _phase_expand_reply(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        rows = self._gather_rows(env, "rank-query", 2).astype(np.int64)
        if rows.size:
            ranks = ctx["rank"][rows[:, 0] - lo]
            if np.isnan(ranks).any():
                raise SimulationError("rank queried before it was computed")
            reply = np.column_stack((rows[:, 1].astype(np.float64), ranks))
            self._send_grouped_float(env, ctx, reply, tag="rank-reply")
        ctx["phase"] = "expand_apply"
        return False

    # phase: expand_apply — set ranks of this level, then recurse one level
    def _phase_expand_apply(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        rows = self._gather_rows(env, "rank-reply", 2)
        if rows.size:
            idx = rows[:, 0].astype(np.int64) - lo
            # rank(u) = rank(succ at removal) + weight at removal
            for k, i in enumerate(idx):
                _lvl, _s, w = ctx["removed"][int(i)]
                ctx["rank"][i] = rows[k, 1] + w
        ctx["expand_level"] -= 1
        return self._expand_send(ctx, env)

    def _phase_done(self, ctx: Context, env: RoundEnv) -> bool:
        return True

    # ------------------------------------------------------------------ output

    def finish(self, ctx: Context) -> Any:
        rank = ctx["rank"]
        if np.isnan(rank).any():
            raise SimulationError("list ranking finished with unranked nodes")
        return rank
