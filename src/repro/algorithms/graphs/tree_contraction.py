"""CGM tree contraction and expression-tree evaluation (Group C).

Miller–Reif rake-and-compress, adapted to the CGM's bulk rounds:

* **rake** — every current leaf sends its edge-function-adjusted value to
  its parent's owner; a parent that has received all children's values
  becomes a leaf itself;
* **compress** — *unary* nodes (exactly one unevaluated child) are chain
  links; an independent set of them (coin heads, parent tails — the same
  symmetry breaking as list ranking) splices out, composing its linear
  edge function into the pending child's;
* **gather** — when at most N/v nodes survive, processor 0 evaluates the
  remainder directly and broadcasts the answer.

Expression trees use operators + and * with values at the leaves.  Every
node u carries a linear *edge function* ``f_u(x) = a_u x + b_u``: the
contribution of u's subtree to u's parent, given u's own still-unknown
value x.  Raking instantiates x; compressing composes two edge functions
through the + / * node between them — the closure property that makes
rake/compress evaluate arithmetic expression trees in a logarithmic
number of phases.

Rounds: O(log v) expected — each rake+compress pair removes a constant
fraction of the live nodes in expectation, and the gather threshold N/v
caps the tail.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import owner_of_index, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.util.validation import SimulationError

OP_ADD = 0
OP_MUL = 1


def eval_expression_direct(parent, op, leaf_value, root) -> float:
    """Reference sequential evaluation (tests and processor 0 use this)."""
    n = len(parent)
    children: list[list[int]] = [[] for _ in range(n)]
    for u, p in enumerate(parent):
        if p >= 0:
            children[p].append(u)
    out = np.full(n, np.nan)
    stack = [(int(root), False)]
    while stack:
        u, expanded = stack.pop()
        if expanded:
            if not children[u]:
                out[u] = leaf_value[u]
            else:
                vals = [out[c] for c in children[u]]
                out[u] = sum(vals) if op[u] == OP_ADD else float(np.prod(vals))
        else:
            stack.append((u, True))
            stack.extend((c, False) for c in children[u])
    return float(out[int(root)])


class ExpressionEval(CGMProgram):
    """Evaluate a distributed (+, *) expression tree; every processor
    returns the root value.

    Input per processor (for its vertex slice): ``(parent, op, value)``
    arrays — ``parent[i] = -1`` at the root, ``op`` in {OP_ADD, OP_MUL}
    at internal nodes, ``value`` meaningful at leaves.  ``cfg.N`` is the
    vertex-id space size.
    """

    name = "expression-eval"
    kappa = 2.0

    def __init__(self, gather_threshold: int | None = None) -> None:
        self.gather_threshold = gather_threshold

    # ------------------------------------------------------------------ setup

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        parent, op, value = local_input
        parent = np.asarray(parent, dtype=np.int64)
        lo, hi = slice_bounds(cfg.N, cfg.v, pid)
        k = hi - lo
        if parent.size != k:
            raise SimulationError(f"processor {pid}: slice size mismatch")
        ctx["pid"] = pid
        ctx["lo"] = lo
        ctx["n"] = cfg.N
        ctx["parent"] = parent.copy()
        ctx["op"] = np.asarray(op, dtype=np.int64).copy()
        ctx["val"] = np.asarray(value, dtype=np.float64).copy()
        ctx["a"] = np.ones(k)
        ctx["b"] = np.zeros(k)
        ctx["pending"] = [[] for _ in range(k)]   # un-evaluated children (gids)
        ctx["had_children"] = np.zeros(k, dtype=bool)
        ctx["ready"] = np.zeros(k)                # op-fold of raked children
        ctx["got"] = np.zeros(k, dtype=np.int64)
        ctx["alive"] = np.ones(k, dtype=bool)
        ctx["root_value"] = None
        ctx["phase"] = "degree"
        threshold = self.gather_threshold
        if threshold is None:
            threshold = max(2, cfg.N // cfg.v)
        ctx["threshold"] = threshold

    # ---------------------------------------------------------------- helpers

    def _route(self, env: RoundEnv, ctx: Context, rows: np.ndarray, tag: str) -> None:
        if rows.size == 0:
            return
        owners = np.asarray(
            owner_of_index(rows[:, 0].astype(np.int64), ctx["n"], env.v),
            dtype=np.int64,
        )
        order = np.argsort(owners, kind="stable")
        rows, owners = rows[order], owners[order]
        bounds = np.searchsorted(owners, np.arange(env.v + 1))
        for d in range(env.v):
            s, e = bounds[d], bounds[d + 1]
            if e > s:
                env.send(d, rows[s:e], tag=tag)

    @staticmethod
    def _rows(env: RoundEnv, tag: str, width: int) -> np.ndarray:
        msgs = env.messages(tag=tag)
        if not msgs:
            return np.zeros((0, width))
        return np.vstack([m.payload for m in msgs])

    def _node_value(self, ctx: Context, i: int) -> float:
        return float(ctx["ready"][i]) if ctx["had_children"][i] else float(ctx["val"][i])

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        return getattr(self, f"_phase_{ctx['phase']}")(ctx, env)

    # ----------------------------------------------------- degree / schedule

    def _phase_degree(self, ctx: Context, env: RoundEnv) -> bool:
        parent, lo = ctx["parent"], ctx["lo"]
        idx = np.nonzero(parent >= 0)[0]
        if idx.size:
            rows = np.column_stack((parent[idx], idx + lo)).astype(np.int64)
            self._route(env, ctx, rows, tag="child")
        ctx["phase"] = "degree_apply"
        return False

    def _phase_degree_apply(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "child", 2).astype(np.int64)
        lo = ctx["lo"]
        for p, c in rows:
            i = int(p) - lo
            ctx["pending"][i].append(int(c))
            ctx["had_children"][i] = True
        env.send(0, int(ctx["alive"].sum()), tag="count")
        ctx["phase"] = "decide"
        return False

    def _phase_decide(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            total = sum(int(m.payload) for m in env.messages(tag="count"))
            decision = "gather" if total <= ctx["threshold"] else "work"
            for dest in range(env.v):
                env.send(dest, decision, tag="decision")
        ctx["phase"] = "rake"
        return False

    # ------------------------------------------------------------------- rake

    def _phase_rake(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="decision")
        if msg.payload == "gather":
            return self._start_gather(ctx, env)

        lo = ctx["lo"]
        parent, alive, pending = ctx["parent"], ctx["alive"], ctx["pending"]
        out = []
        for i in np.nonzero(alive)[0]:
            if pending[i]:
                continue  # still waiting on children
            value = self._node_value(ctx, i)
            p = parent[i]
            alive[i] = False
            if p < 0:
                ctx["root_value"] = value
                continue
            y = ctx["a"][i] * value + ctx["b"][i]
            out.append((float(p), y, float(i + lo)))
        if out:
            self._route(env, ctx, np.asarray(out), tag="rake")
        ctx["phase"] = "rake_apply"
        return False

    def _phase_rake_apply(self, ctx: Context, env: RoundEnv) -> bool:
        rows = self._rows(env, "rake", 3)
        lo = ctx["lo"]
        for p, y, child_gid in rows:
            i = int(p) - lo
            if ctx["got"][i] == 0:
                ctx["ready"][i] = y
            else:
                ctx["ready"][i] = (
                    ctx["ready"][i] + y if ctx["op"][i] == OP_ADD else ctx["ready"][i] * y
                )
            ctx["got"][i] += 1
            ctx["pending"][i].remove(int(child_gid))

        # compress setup: unary nodes flip coins; ask parent for its coin
        alive, parent, pending = ctx["alive"], ctx["parent"], ctx["pending"]
        coins: dict[int, bool] = {}
        rows_out = []
        for i in np.nonzero(alive)[0]:
            if len(pending[i]) == 1 and parent[i] >= 0:
                heads = bool(env.rng.random() < 0.5)
                coins[int(i)] = heads
                rows_out.append((int(parent[i]), int(i) + ctx["lo"]))
        ctx["coins"] = coins
        if rows_out:
            self._route(env, ctx, np.asarray(rows_out, dtype=np.int64), tag="coinq")
        ctx["phase"] = "compress_select"
        return False

    # --------------------------------------------------------------- compress

    def _phase_compress_select(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        rows = self._rows(env, "coinq", 2).astype(np.int64)
        coins = ctx["coins"]
        replies = []
        for p, child_gid in rows:
            i = int(p) - lo
            replies.append((int(child_gid), int(coins.get(i, False))))
        if replies:
            self._route(env, ctx, np.asarray(replies, dtype=np.int64), tag="coina")
        ctx["phase"] = "compress_splice"
        return False

    def _phase_compress_splice(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        rows = self._rows(env, "coina", 2).astype(np.int64)
        parent_heads = {int(g): bool(c) for g, c in rows}
        coins = ctx.pop("coins")
        alive, parent, pending = ctx["alive"], ctx["parent"], ctx["pending"]

        child_updates = []   # (c, new_parent, A, B)
        parent_updates = []  # (pp, old_child=me, new_child=c)
        for i, heads in coins.items():
            gid = i + lo
            if not heads or parent_heads.get(gid, False):
                continue
            if not alive[i] or len(pending[i]) != 1 or parent[i] < 0:
                continue
            c = pending[i][0]
            a_i, b_i = float(ctx["a"][i]), float(ctx["b"][i])
            got = int(ctx["got"][i])
            ready = float(ctx["ready"][i])
            if got == 0:
                A, B = a_i, b_i                       # val = f_c(x)
            elif ctx["op"][i] == OP_ADD:
                A, B = a_i, a_i * ready + b_i         # val = ready + f_c(x)
            else:
                A, B = a_i * ready, b_i               # val = ready * f_c(x)
            child_updates.append((float(c), float(parent[i]), A, B))
            parent_updates.append((int(parent[i]), int(gid), int(c)))
            alive[i] = False
        if child_updates:
            self._route(env, ctx, np.asarray(child_updates), tag="splice-c")
        if parent_updates:
            self._route(
                env, ctx, np.asarray(parent_updates, dtype=np.int64), tag="splice-p"
            )
        ctx["phase"] = "apply_count"
        return False

    def _phase_apply_count(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        for c, new_parent, A, B in self._rows(env, "splice-c", 4):
            i = int(c) - lo
            ctx["parent"][i] = int(new_parent)
            ctx["a"][i] = A * ctx["a"][i]
            ctx["b"][i] = A * ctx["b"][i] + B
        for pp, old_child, new_child in self._rows(env, "splice-p", 3).astype(np.int64):
            i = int(pp) - lo
            ctx["pending"][i].remove(int(old_child))
            ctx["pending"][i].append(int(new_child))
        env.send(0, int(ctx["alive"].sum()), tag="count")
        ctx["phase"] = "decide"
        return False

    # ----------------------------------------------------------------- gather

    def _start_gather(self, ctx: Context, env: RoundEnv) -> bool:
        lo = ctx["lo"]
        alive = np.nonzero(ctx["alive"])[0]
        if alive.size:
            rows = np.column_stack(
                (
                    alive + lo,
                    ctx["parent"][alive],
                    ctx["op"][alive],
                    np.where(
                        ctx["had_children"][alive], ctx["ready"][alive], ctx["val"][alive]
                    ),
                    ctx["got"][alive],
                    [len(ctx["pending"][i]) for i in alive],
                    ctx["a"][alive],
                    ctx["b"][alive],
                )
            )
            env.send(0, rows, tag="gathered")
        if ctx["root_value"] is not None:
            env.send(0, float(ctx["root_value"]), tag="rootval")
        ctx["phase"] = "solve"
        return False

    def _phase_solve(self, ctx: Context, env: RoundEnv) -> bool:
        if ctx["pid"] == 0:
            done = env.messages(tag="rootval")
            if done:
                value = float(done[0].payload)
            else:
                value = self._solve_locally(self._rows(env, "gathered", 8))
            for dest in range(env.v):
                env.send(dest, value, tag="answer")
        ctx["phase"] = "finish"
        return False

    @staticmethod
    def _solve_locally(rows: np.ndarray) -> float:
        ids = rows[:, 0].astype(np.int64)
        pos = {int(u): k for k, u in enumerate(ids)}
        parent = rows[:, 1].astype(np.int64)
        op = rows[:, 2].astype(np.int64)
        acc = rows[:, 3].astype(np.float64)
        got = rows[:, 4].astype(np.int64)
        n_pending = rows[:, 5].astype(np.int64)
        a = rows[:, 6].astype(np.float64)
        b = rows[:, 7].astype(np.float64)

        children: dict[int, list[int]] = {}
        root = -1
        for k, u in enumerate(ids):
            p = int(parent[k])
            if p < 0:
                root = k
            else:
                children.setdefault(pos[p], []).append(k)
        if root < 0:
            raise SimulationError("gathered remainder has no root")

        value = np.full(ids.size, np.nan)
        # evaluate bottom-up over the gathered forest (iterative post-order)
        stack = [(root, False)]
        while stack:
            k, expanded = stack.pop()
            if not expanded:
                stack.append((k, True))
                stack.extend((c, False) for c in children.get(k, []))
                continue
            if n_pending[k] == 0:
                value[k] = acc[k]
                continue
            vals = [a[c] * value[c] + b[c] for c in children.get(k, [])]
            combined = sum(vals) if op[k] == OP_ADD else float(np.prod(vals))
            if got[k] > 0:
                combined = acc[k] + combined if op[k] == OP_ADD else acc[k] * combined
            value[k] = combined
        return float(value[root])

    def _phase_finish(self, ctx: Context, env: RoundEnv) -> bool:
        (msg,) = env.messages(tag="answer")
        ctx["root_value"] = float(msg.payload)
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["root_value"]
