"""Biconnected components and open-ear decomposition (Group C row 2).

Tarjan–Vishkin, assembled from the CGM primitives this package already
provides — exactly the composition the paper's Figure 5 relies on:

1. spanning tree (hook-and-contract connected components),
2. Euler tour -> preorder numbers, subtree sizes, depths (list ranking),
3. ``low``/``high``: for every vertex v the min/max preorder reachable
   from subtree(v) by a single non-tree edge — a scatter-reduce to build
   the per-vertex array in preorder order, then batched subtree
   range-min/range-max queries,
4. the auxiliary graph on tree edges (the two Tarjan–Vishkin rules),
   whose connected components are the biconnected components,
5. ear decomposition (Maon–Schieber–Vishkin): non-tree edges sorted by
   (depth of LCA, id) number the ears; a tree edge joins the smallest
   ear among non-tree edges with exactly one endpoint in its subtree —
   another scatter-reduce + subtree range-min.

Each numbered step is one or more CGM program runs; the glue between
them (index arithmetic on assembled arrays) is O(N) local work.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.graphs.api import (
    GraphResult,
    connected_components,
    lowest_common_ancestors,
    range_min_queries,
    scatter_reduce,
    tree_measures,
)
from repro.cgm.config import MachineConfig
from repro.util.validation import ConfigurationError, require

_INF = np.iinfo(np.int64).max


def _subtree_queries(pre: np.ndarray, size: np.ndarray) -> np.ndarray:
    """RMQ query rows (qid=v, pre[v], pre[v]+size[v]-1) for every vertex."""
    n = pre.size
    return np.column_stack((np.arange(n), pre, pre + size - 1))


def low_high(
    edges: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    engine: str | None = None,
    measures: dict | None = None,
    tree_mask: np.ndarray | None = None,
) -> GraphResult:
    """low(v)/high(v): min/max preorder reachable from subtree(v) via one
    non-tree edge (including subtree(v)'s own preorders)."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if measures is None or tree_mask is None:
        cc = connected_components(edges, n_vertices, cfg, engine)
        require(
            np.all(cc.values == cc.values[0]),
            "low/high requires a connected graph",
            ConfigurationError,
        )
        forest = np.asarray(cc.extra["forest"], dtype=np.int64)
        tree_mask = np.zeros(edges.shape[0], dtype=bool)
        tree_mask[forest] = True
        tm = tree_measures(edges[forest], n_vertices, cfg, root=0, engine=engine)
        measures = tm.values
        reports = cc.reports + tm.reports
    else:
        reports = []

    pre, size = measures["preorder"], measures["size"]
    nt = edges[~tree_mask]

    # per-vertex min/max of neighbour preorders over non-tree edges,
    # keyed by the vertex's own preorder position
    ident = np.column_stack((pre, pre))
    rows_min = [ident]
    rows_max = [ident]
    if nt.size:
        u, w = nt[:, 0], nt[:, 1]
        rows_min.append(np.column_stack((pre[u], pre[w])))
        rows_min.append(np.column_stack((pre[w], pre[u])))
        rows_max = rows_min.copy()
        rows_max[0] = ident
    amin = scatter_reduce(np.vstack(rows_min), n_vertices, cfg, "min", engine)
    amax = scatter_reduce(np.vstack(rows_max), n_vertices, cfg, "max", engine)
    reports = reports + amin.reports + amax.reports

    queries = _subtree_queries(pre, size)
    low_q = range_min_queries(amin.values, queries, cfg, engine=engine)
    high_q = range_min_queries(-amax.values, queries, cfg, engine=engine)
    reports = reports + low_q.reports + high_q.reports

    low = np.empty(n_vertices, dtype=np.int64)
    high = np.empty(n_vertices, dtype=np.int64)
    low[low_q.values[:, 0]] = low_q.values[:, 1]
    high[high_q.values[:, 0]] = -high_q.values[:, 1]
    return GraphResult(
        {"low": low, "high": high},
        reports,
        extra={"measures": measures, "tree_mask": tree_mask},
    )


def biconnected_components(
    edges: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GraphResult:
    """Biconnected components of a connected graph.

    Returns per-edge component labels (arbitrary but consistent ints);
    ``extra`` carries articulation points and bridges.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    E = edges.shape[0]
    require(E >= 1, "need at least one edge", ConfigurationError)

    lh = low_high(edges, n_vertices, cfg, engine)
    measures = lh.extra["measures"]
    tree_mask = lh.extra["tree_mask"]
    pre, size, parent = measures["preorder"], measures["size"], measures["parent"]
    low, high = lh.values["low"], lh.values["high"]
    reports = list(lh.reports)

    def is_ancestor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (pre[a] <= pre[b]) & (pre[b] < pre[a] + size[a])

    # auxiliary graph: node w represents tree edge (parent(w), w), w != root
    aux_edges = []
    nt = edges[~tree_mask]
    if nt.size:
        u, w = nt[:, 0], nt[:, 1]
        unrelated = ~is_ancestor(u, w) & ~is_ancestor(w, u)
        aux_edges.append(nt[unrelated])
    # rule 2: tree edge (v, w): join e_v and e_w iff subtree(w) escapes
    # subtree(v) via a non-tree edge
    w_all = np.nonzero(parent >= 0)[0]
    v_all = parent[w_all]
    cond = (v_all != 0) | False
    escapes = (low[w_all] < pre[v_all]) | (high[w_all] >= pre[v_all] + size[v_all])
    join = (parent[v_all] >= 0) & escapes
    if join.any():
        aux_edges.append(np.column_stack((v_all[join], w_all[join])))
    del cond

    aux = (
        np.vstack(aux_edges) if aux_edges else np.zeros((0, 2), dtype=np.int64)
    )
    # aux vertices are vertex ids (standing for their parent tree edge);
    # run CC over the full vertex space — unused ids become singletons
    aux_cc = connected_components(aux, n_vertices, cfg, engine)
    reports += aux_cc.reports
    comp_of_vertex = aux_cc.values

    # per-edge component labels
    edge_comp = np.empty(E, dtype=np.int64)
    t_idx = np.nonzero(tree_mask)[0]
    for i in t_idx:
        a, b = edges[i]
        child = b if parent[b] == a else a
        edge_comp[i] = comp_of_vertex[child]
    n_idx = np.nonzero(~tree_mask)[0]
    for i in n_idx:
        a, b = edges[i]
        deeper = b if pre[b] > pre[a] else a
        edge_comp[i] = comp_of_vertex[deeper]

    # articulation points: vertices incident to >= 2 components (plus the
    # root special case, covered by the same counting)
    comp_sets: dict[int, set[int]] = {}
    for i in range(E):
        for x in edges[i]:
            comp_sets.setdefault(int(x), set()).add(int(edge_comp[i]))
    articulation = sorted(v for v, s in comp_sets.items() if len(s) >= 2)

    # bridges: components containing exactly one edge
    labels, counts = np.unique(edge_comp, return_counts=True)
    single = set(labels[counts == 1].tolist())
    bridges = sorted(int(i) for i in range(E) if int(edge_comp[i]) in single)

    return GraphResult(
        edge_comp,
        reports,
        extra={
            "articulation_points": articulation,
            "bridges": bridges,
            "tree_mask": tree_mask,
            "measures": measures,
        },
    )


def ear_decomposition(
    edges: np.ndarray,
    n_vertices: int,
    cfg: MachineConfig,
    engine: str | None = None,
) -> GraphResult:
    """Ear decomposition of a biconnected graph: ear index per edge.

    Non-tree edges are numbered by (depth of their endpoints' LCA, edge
    id); each defines an ear consisting of itself plus the tree edges it
    is the minimum cover of (Maon–Schieber–Vishkin).  Ear 0 is a cycle;
    every other ear is a simple path whose endpoints lie on smaller ears.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    E = edges.shape[0]

    cc = connected_components(edges, n_vertices, cfg, engine)
    require(
        np.all(cc.values == cc.values[0]),
        "ear decomposition requires a connected graph",
        ConfigurationError,
    )
    forest = np.asarray(cc.extra["forest"], dtype=np.int64)
    tree_mask = np.zeros(E, dtype=bool)
    tree_mask[forest] = True
    tm = tree_measures(edges[forest], n_vertices, cfg, root=0, engine=engine)
    measures = tm.values
    pre, size, depth = measures["preorder"], measures["size"], measures["depth"]
    reports = cc.reports + tm.reports

    nt_idx = np.nonzero(~tree_mask)[0]
    require(nt_idx.size >= 1, "a biconnected graph has a non-tree edge", ConfigurationError)
    nt = edges[nt_idx]

    lca = lowest_common_ancestors(edges[forest], nt, n_vertices, cfg, engine=engine)
    reports += lca.reports
    lca_depth = depth[lca.values]

    # ear numbering: sort non-tree edges by (lca depth, edge id)
    order = np.lexsort((nt_idx, lca_depth))
    ear_of_nt = np.empty(nt_idx.size, dtype=np.int64)
    ear_of_nt[order] = np.arange(nt_idx.size)

    # h(u) = min ear among non-tree edges incident to u, keyed by preorder
    rows = [np.column_stack((pre, np.full(n_vertices, _INF)))]
    rows.append(np.column_stack((pre[nt[:, 0]], ear_of_nt)))
    rows.append(np.column_stack((pre[nt[:, 1]], ear_of_nt)))
    h = scatter_reduce(np.vstack(rows), n_vertices, cfg, "min", engine)
    reports += h.reports

    # ear(tree edge into w) = min h over subtree(w)
    sub = range_min_queries(h.values, _subtree_queries(pre, size), cfg, engine=engine)
    reports += sub.reports
    min_ear = np.empty(n_vertices, dtype=np.int64)
    min_ear[sub.values[:, 0]] = sub.values[:, 1]

    ear = np.empty(E, dtype=np.int64)
    ear[nt_idx] = ear_of_nt
    parent = measures["parent"]
    for i in np.nonzero(tree_mask)[0]:
        a, b = edges[i]
        child = b if parent[b] == a else a
        require(
            min_ear[child] != _INF,
            f"tree edge {i} is covered by no non-tree edge — graph is not "
            "biconnected (it has a bridge)",
            ConfigurationError,
        )
        ear[i] = min_ear[child]

    return GraphResult(ear, reports, extra={"tree_mask": tree_mask})
