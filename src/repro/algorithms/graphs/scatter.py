"""Scatter-reduce: the one-round 'route and fold' CGM primitive.

Many Group C steps are of the form "for every key, combine contributions
arriving from all over the machine" — per-vertex minima of incident edge
attributes, degree counts, etc.  This program routes ``(key, value)``
rows to the key's owner and folds them with min / max / sum; owners
output the reduced array for their key slice (identity value where no
contribution arrived).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import owner_of_index, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.util.validation import ConfigurationError

_OPS = {
    "min": (np.minimum, np.iinfo(np.int64).max),
    "max": (np.maximum, np.iinfo(np.int64).min),
    "sum": (np.add, 0),
}


class ScatterReduce(CGMProgram):
    """Reduce (key, value) int64 pairs by key owner. lambda = 1.

    Input per processor: an (k, 2) array of ``(key, value)``; keys live in
    [0, cfg.N).  Output per processor: the reduced int64 array for its
    key slice.
    """

    name = "scatter-reduce"
    kappa = 1.0

    def __init__(self, op: str = "min") -> None:
        if op not in _OPS:
            raise ConfigurationError(f"op must be one of {sorted(_OPS)}, got {op!r}")
        self.op = op

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        rows = np.asarray(local_input, dtype=np.int64).reshape(-1, 2)
        ctx["pid"] = pid
        ctx["rows"] = rows
        lo, hi = slice_bounds(cfg.N, cfg.v, pid)
        ctx["lo"] = lo
        _fn, identity = _OPS[self.op]
        ctx["out"] = np.full(hi - lo, identity, dtype=np.int64)

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r == 0:
            rows = ctx.pop("rows")
            if rows.size:
                owners = np.asarray(
                    owner_of_index(rows[:, 0], env.cfg.N, env.v), dtype=np.int64
                )
                order = np.argsort(owners, kind="stable")
                rows, owners = rows[order], owners[order]
                bounds = np.searchsorted(owners, np.arange(env.v + 1))
                for d in range(env.v):
                    a, b = bounds[d], bounds[d + 1]
                    if b > a:
                        env.send(d, rows[a:b], tag="sr")
            return False
        fn, _identity = _OPS[self.op]
        out, lo = ctx["out"], ctx["lo"]
        for m in env.messages(tag="sr"):
            rows = m.payload
            fn.at(out, rows[:, 0] - lo, rows[:, 1])
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["out"]
