"""CGM Euler tour of a tree (Figure 5 Group C row 1).

A tree on n vertices with E = n-1 edges yields 2E directed edges; the
Euler tour visits each exactly once.  The classic construction gives each
directed edge a *successor*:

    succ(u -> v) = (v -> w),  w = the neighbour of v following u in the
                              circular, sorted adjacency order of v,

and rooting at r breaks the circle by giving the edge that would wrap
around back to (r -> first-neighbour) no successor.  The result is a
linked list over directed-edge ids (edge e=(u,v) gets ids 2e for u->v and
2e+1 for v->u, so reversal is ``id ^ 1``), which weighted
:class:`~repro.algorithms.graphs.list_ranking.ListRanking` then converts
into tour positions, vertex depths, preorder numbers and subtree sizes.

This program builds the successor list in lambda = 2 communication
rounds; the machine's ``N`` must be 2E (the directed-edge id space).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import owner_of_index, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.util.validation import SimulationError


class EulerTourBuild(CGMProgram):
    """Builds the Euler-tour successor list of a tree.

    Input per processor: an (k, 3) int array of rows ``(eid, u, v)`` —
    an arbitrary distribution of the undirected edges.  The constructor
    fixes the vertex-id space size and the root.

    Output per processor: the successor array for its slice of the
    directed-edge id space [0, 2E) (successor id, -1 for the tour tail).
    """

    name = "euler-tour-build"
    kappa = 2.0

    def __init__(self, n_vertices: int, root: int = 0) -> None:
        self.n_vertices = n_vertices
        self.root = root

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        edges = np.asarray(local_input, dtype=np.int64).reshape(-1, 3)
        ctx["pid"] = pid
        ctx["edges"] = edges
        ctx["n_dir"] = cfg.N  # 2E
        lo, hi = slice_bounds(cfg.N, cfg.v, pid)
        ctx["lo"] = lo
        ctx["succ"] = np.full(hi - lo, -2, dtype=np.int64)  # -2 = unset

    def _route_by_vertex(self, env: RoundEnv, rows: np.ndarray, tag: str) -> None:
        owners = np.asarray(
            owner_of_index(rows[:, 0], self.n_vertices, env.v), dtype=np.int64
        )
        order = np.argsort(owners, kind="stable")
        rows, owners = rows[order], owners[order]
        bounds = np.searchsorted(owners, np.arange(env.v + 1))
        for d in range(env.v):
            a, b = bounds[d], bounds[d + 1]
            if b > a:
                env.send(d, rows[a:b], tag=tag)

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        if r == 0:
            edges = ctx["edges"]
            if edges.size:
                # directed (u -> v) has id 2e, (v -> u) has id 2e+1; route
                # each directed edge to the owner of its HEAD vertex.
                eid, u, v = edges[:, 0], edges[:, 1], edges[:, 2]
                into_v = np.column_stack((v, u, 2 * eid))        # (head, tail, did)
                into_u = np.column_stack((u, v, 2 * eid + 1))
                self._route_by_vertex(env, np.vstack((into_v, into_u)), tag="adj")
            del ctx["edges"]
            return False

        if r == 1:
            msgs = env.messages(tag="adj")
            rows = (
                np.vstack([m.payload for m in msgs])
                if msgs
                else np.zeros((0, 3), dtype=np.int64)
            )
            out: list[tuple[int, int]] = []
            if rows.size:
                # group by head vertex; neighbours in sorted circular order
                order = np.lexsort((rows[:, 1], rows[:, 0]))
                rows = rows[order]
                heads = rows[:, 0]
                starts = np.concatenate(
                    ([0], np.nonzero(np.diff(heads))[0] + 1, [heads.size])
                )
                for gi in range(starts.size - 1):
                    a, b = starts[gi], starts[gi + 1]
                    x = int(heads[a])
                    dids = rows[a:b, 2]
                    k = b - a
                    for i in range(k):
                        nxt = dids[(i + 1) % k] ^ 1  # (x -> next neighbour)
                        if x == self.root and i == k - 1:
                            nxt = -1  # break the circle: tour tail
                        out.append((int(dids[i]), int(nxt)))
            if out:
                srows = np.asarray(out, dtype=np.int64)
                owners = np.asarray(
                    owner_of_index(srows[:, 0], ctx["n_dir"], env.v), dtype=np.int64
                )
                order = np.argsort(owners, kind="stable")
                srows, owners = srows[order], owners[order]
                bounds = np.searchsorted(owners, np.arange(env.v + 1))
                for d in range(env.v):
                    a, b = bounds[d], bounds[d + 1]
                    if b > a:
                        env.send(d, srows[a:b], tag="succ")
            return False

        rows = [m.payload for m in env.messages(tag="succ")]
        if rows:
            arr = np.vstack(rows)
            ctx["succ"][arr[:, 0] - ctx["lo"]] = arr[:, 1]
        if (ctx["succ"] == -2).any():
            raise SimulationError(
                "some directed edges received no successor — edge ids must "
                "be exactly 0..E-1 and the graph a connected tree"
            )
        return True

    def finish(self, ctx: Context) -> Any:
        return ctx["succ"]
