"""Distributed batched range-minimum queries (the LCA workhorse).

The value array is distributed over the processors in contiguous slabs;
each processor also receives an arbitrary share of the queries.  Constant
number of rounds:

1. every processor broadcasts its slab minimum (an all-gather of v
   entries — v^2 data in total, fine since N >= v^2), and routes each
   query: a query contained in one slab goes to that slab's owner; a
   straddling query sends a *left part* to the owner of its left end and
   a *right part* to the owner of its right end;
2. slab owners answer their (partial) queries directly from local data;
3. the query's home processor combines left part, right part and the
   slab-minimum table for the fully covered slabs in between.

Each array position may carry an int64 payload (for LCA: the vertex
visited at that tour position); the answer returns the payload at the
argmin.  Ties break toward the smaller position.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.collectives import owner_of_index, slice_bounds
from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, Context, RoundEnv
from repro.util.validation import SimulationError

_INF = np.iinfo(np.int64).max


class RangeMin(CGMProgram):
    """Batched RMQ over a distributed int64 array with payloads.

    Input per processor: ``(values_slice, payload_slice, queries)`` where
    queries is an (k, 3) array of ``(qid, l, r)`` with 0 <= l <= r < N.
    Output per processor: an (k, 3) array ``(qid, min_value, payload)``
    for the queries it submitted.
    """

    name = "range-min"
    kappa = 2.0

    def setup(self, ctx: Context, pid: int, cfg: MachineConfig, local_input: Any) -> None:
        values, payload, queries = local_input
        values = np.asarray(values, dtype=np.int64)
        payload = (
            np.asarray(payload, dtype=np.int64)
            if payload is not None
            else np.zeros_like(values)
        )
        queries = np.asarray(queries, dtype=np.int64).reshape(-1, 3)
        lo, hi = slice_bounds(cfg.N, cfg.v, pid)
        if values.size != hi - lo:
            raise SimulationError(f"slab size mismatch on processor {pid}")
        ctx["pid"] = pid
        ctx["lo"] = lo
        ctx["n"] = cfg.N
        ctx["values"] = values
        ctx["payload"] = payload
        ctx["queries"] = queries
        ctx["partial"] = {}   # qid -> {"left": (val, pay), "right": ...}
        ctx["answers"] = {}

    # ---------------------------------------------------------------- helpers

    def _local_min(self, ctx: Context, l: int, r: int) -> tuple[int, int]:
        """Min (value, payload) over global [l, r] clipped to this slab."""
        lo = ctx["lo"]
        vals = ctx["values"]
        a = max(0, l - lo)
        b = min(vals.size - 1, r - lo)
        if a > b:
            return _INF, 0
        seg = vals[a : b + 1]
        k = int(np.argmin(seg))
        return int(seg[k]), int(ctx["payload"][a + k])

    def round(self, r: int, ctx: Context, env: RoundEnv) -> bool:
        pid, v, n = ctx["pid"], env.v, ctx["n"]

        if r == 0:
            # broadcast slab minimum; route queries
            vals = ctx["values"]
            if vals.size:
                k = int(np.argmin(vals))
                entry = np.array([pid, int(vals[k]), int(ctx["payload"][k])], dtype=np.int64)
            else:
                entry = np.array([pid, _INF, 0], dtype=np.int64)
            for dest in range(v):
                env.send(dest, entry, tag="slabmin")

            buckets: dict[tuple[int, str], list[list[int]]] = {}
            for qid, l, rr in ctx["queries"]:
                if not (0 <= l <= rr < n):
                    raise SimulationError(f"query {qid} out of range: [{l}, {rr}]")
                o_l = int(owner_of_index(int(l), n, v))
                o_r = int(owner_of_index(int(rr), n, v))
                if o_l == o_r:
                    buckets.setdefault((o_l, "in"), []).append([qid, l, rr, pid])
                else:
                    buckets.setdefault((o_l, "left"), []).append([qid, l, rr, pid])
                    buckets.setdefault((o_r, "right"), []).append([qid, l, rr, pid])
            for (dest, kind), rows in sorted(buckets.items()):
                env.send(dest, np.asarray(rows, dtype=np.int64), tag=kind)
            return False

        if r == 1:
            # build the slab-minimum table; answer partial queries
            table_val = np.full(v, _INF, dtype=np.int64)
            table_pay = np.zeros(v, dtype=np.int64)
            for m in env.messages(tag="slabmin"):
                s, val, pay = m.payload
                table_val[int(s)] = val
                table_pay[int(s)] = pay
            ctx["table_val"] = table_val
            ctx["table_pay"] = table_pay

            replies: dict[int, list[list[int]]] = {}
            lo = ctx["lo"]
            hi = lo + ctx["values"].size - 1
            for kind, clip in (
                ("in", lambda l, rr: (l, rr)),
                ("left", lambda l, rr: (l, hi)),
                ("right", lambda l, rr: (lo, rr)),
            ):
                for m in env.messages(tag=kind):
                    for qid, l, rr, home in m.payload:
                        a, b = clip(int(l), int(rr))
                        val, pay = self._local_min(ctx, a, b)
                        code = {"in": 0, "left": 1, "right": 2}[kind]
                        replies.setdefault(int(home), []).append([qid, code, val, pay])
            for home, rows in sorted(replies.items()):
                env.send(home, np.asarray(rows, dtype=np.int64), tag="part")
            return False

        # r == 2: combine
        parts: dict[int, dict[int, tuple[int, int]]] = {}
        for m in env.messages(tag="part"):
            for qid, code, val, pay in m.payload:
                parts.setdefault(int(qid), {})[int(code)] = (int(val), int(pay))
        table_val, table_pay = ctx["table_val"], ctx["table_pay"]
        answers = ctx["answers"]
        for qid, l, rr in ctx["queries"]:
            got = parts.get(int(qid), {})
            if 0 in got:
                answers[int(qid)] = got[0]
                continue
            best = got.get(1, (_INF, 0))
            right = got.get(2, (_INF, 0))
            if right[0] < best[0]:
                best = right
            o_l = int(owner_of_index(int(l), n, env.v))
            o_r = int(owner_of_index(int(rr), n, env.v))
            for s in range(o_l + 1, o_r):
                if table_val[s] < best[0]:
                    best = (int(table_val[s]), int(table_pay[s]))
            answers[int(qid)] = best
        return True

    def finish(self, ctx: Context) -> Any:
        out = [
            (int(qid), *ctx["answers"][int(qid)]) for qid, _l, _r in ctx["queries"]
        ]
        return np.asarray(out, dtype=np.int64).reshape(-1, 3)
