"""``repro top``: a live textual view of a running simulation.

:class:`TopView` is an incremental aggregator: feed it bus events one at
a time (:meth:`TopView.feed`) and :meth:`TopView.render` produces a
compact dashboard at any point mid-run — machine shape, the last few
supersteps with their parallel-I/O and wall-clock cost, running totals,
prefetch/arena health and any ``model_drift`` alarms.  It never holds
the full trace, so it can watch arbitrarily long runs at O(window)
memory.

Two stdlib event sources feed it:

* :func:`iter_jsonl` — read a JSON-lines trace file, optionally in
  ``follow`` mode (tail a live ``REPRO_TRACE=<path>`` / ``EventBus``
  sink as the engine appends to it);
* :func:`iter_sse` — consume the ``/events`` Server-Sent-Events stream
  of :class:`repro.obs.server.ObsServer` over HTTP.
"""

from __future__ import annotations

import json
import time
import urllib.request
from collections import deque
from typing import Any, Iterator


def iter_jsonl(
    path: str,
    follow: bool = False,
    poll_s: float = 0.2,
    idle_timeout_s: "float | None" = None,
) -> Iterator[dict[str, Any]]:
    """Yield events from a JSON-lines trace file.

    With ``follow=True`` the iterator tails the file like ``tail -f``,
    sleeping *poll_s* between attempts; it stops after a ``run_end``
    event, or once *idle_timeout_s* passes with no new data (``None`` =
    wait forever).  Partial trailing lines (a writer mid-flush) are
    retried, not dropped.
    """
    with open(path, "r", encoding="utf-8") as fh:
        buf = ""
        idle_since = time.monotonic()
        while True:
            chunk = fh.readline()
            if chunk:
                buf += chunk
                if not buf.endswith("\n"):
                    continue  # partial line; wait for the rest
                line, buf = buf.strip(), ""
                if not line:
                    continue
                ev = json.loads(line)
                idle_since = time.monotonic()
                yield ev
                if follow and ev.get("kind") == "run_end":
                    return
                continue
            if not follow:
                return
            if (
                idle_timeout_s is not None
                and time.monotonic() - idle_since >= idle_timeout_s
            ):
                return
            time.sleep(poll_s)


def iter_sse(url: str, timeout_s: float = 30.0) -> Iterator[dict[str, Any]]:
    """Yield events from an SSE endpoint (``/events`` of the obs server).

    Parses ``data:`` frames as JSON, skips comments/keepalives, and
    stops on an ``event: end`` frame, a closed connection, or a socket
    read blocking longer than *timeout_s*.
    """
    req = urllib.request.Request(url, headers={"Accept": "text/event-stream"})
    with urllib.request.urlopen(req, timeout=timeout_s) as resp:
        event_type = "trace"
        data_lines: list[str] = []
        for raw in resp:
            line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
            if line.startswith(":"):
                continue  # keepalive comment
            if line.startswith("event:"):
                event_type = line[len("event:"):].strip()
                continue
            if line.startswith("data:"):
                data_lines.append(line[len("data:"):].strip())
                continue
            if line == "":  # frame boundary
                if event_type == "end":
                    return
                if data_lines:
                    yield json.loads("\n".join(data_lines))
                event_type = "trace"
                data_lines = []


class TopView:
    """Incremental run dashboard; ``feed`` events, ``render`` anytime."""

    def __init__(self, window: int = 8) -> None:
        self.window = window
        self.machine: dict[str, Any] = {}
        self.engine: "str | None" = None
        self.program: "str | None" = None
        self.workers: "int | None" = None
        self.rounds: deque[dict[str, Any]] = deque(maxlen=window)
        self.supersteps = 0
        self.total_ios = 0
        self.run_total_ios: "int | None" = None
        self.events_seen = 0
        self.drifts: list[dict[str, Any]] = []
        self.prefetch_submitted = 0
        self.prefetch_hits = 0
        self.prefetch_misses = 0
        self.arena_grows = 0
        self.arena_resident_peak = 0
        self.arena_spill_peak = 0
        self.finished = False

    def feed(self, ev: dict[str, Any]) -> None:
        self.events_seen += 1
        kind = ev.get("kind")
        if kind == "run_begin":
            self.engine = ev.get("engine")
            self.program = ev.get("program")
            self.workers = ev.get("workers")
            self.machine = {
                k: ev[k] for k in ("N", "v", "p", "D", "B") if k in ev
            }
        elif kind == "superstep_end":
            self.supersteps += 1
            ios = int(ev.get("parallel_ios", 0) or 0)
            self.total_ios += ios
            self.rounds.append(
                {
                    "round": ev.get("round"),
                    "superstep": ev.get("superstep"),
                    "parallel_ios": ios,
                    "wall_s": float(ev.get("wall_s", 0.0) or 0.0),
                    "drift": False,
                }
            )
        elif kind == "model_drift":
            self.drifts.append(ev)
            for row in reversed(self.rounds):
                if row["round"] == ev.get("round"):
                    row["drift"] = True
                    break
        elif kind == "prefetch":
            self.prefetch_submitted += int(ev.get("submitted", 0) or 0)
            self.prefetch_hits += int(ev.get("hits", 0) or 0)
            self.prefetch_misses += int(ev.get("misses", 0) or 0)
        elif kind == "arena_grow":
            self.arena_grows += 1
            self.arena_resident_peak = max(
                self.arena_resident_peak, int(ev.get("resident_nbytes", 0) or 0)
            )
            self.arena_spill_peak = max(
                self.arena_spill_peak, int(ev.get("spill_nbytes", 0) or 0)
            )
        elif kind == "run_end":
            self.finished = True
            total = ev.get("parallel_ios")
            if total is not None:
                self.run_total_ios = int(total)

    def render(self) -> str:
        head = f"repro top — {self.program or '?'} on {self.engine or '?'}"
        if self.workers:
            head += f" ({self.workers} workers)"
        lines = [head]
        if self.machine:
            lines.append(
                "machine: "
                + "  ".join(f"{k}={v}" for k, v in self.machine.items())
            )
        lines.append(
            f"supersteps: {self.supersteps}   parallel I/Os: {self.total_ios}"
            + (
                f" / {self.run_total_ios} total"
                if self.run_total_ios is not None
                else ""
            )
            + f"   events: {self.events_seen}"
        )
        if self.rounds:
            lines.append("")
            lines.append(f"{'round':>6} {'superstep':>9} {'par I/Os':>9} "
                         f"{'wall (s)':>9}  flags")
            for row in self.rounds:
                lines.append(
                    f"{row['round'] if row['round'] is not None else '?':>6} "
                    f"{row['superstep'] if row['superstep'] is not None else '?':>9} "
                    f"{row['parallel_ios']:>9} "
                    f"{row['wall_s']:>9.4f}  "
                    f"{'DRIFT' if row['drift'] else ''}"
                )
        if self.prefetch_submitted:
            lines.append(
                f"prefetch: {self.prefetch_submitted} submitted, "
                f"{self.prefetch_hits} hits, {self.prefetch_misses} misses"
            )
        if self.arena_grows:
            spill = (
                f", spill peak {self.arena_spill_peak} B"
                if self.arena_spill_peak
                else ""
            )
            lines.append(
                f"arena: {self.arena_grows} growth events, resident peak "
                f"{self.arena_resident_peak} B{spill}"
            )
        if self.drifts:
            lines.append(
                f"model drift: {len(self.drifts)} superstep(s) exceeded the "
                "Theorem 2/3 I/O envelope"
            )
        lines.append("status: " + ("finished" if self.finished else "running"))
        return "\n".join(lines) + "\n"
