"""Superstep-level observability for the EM-CGM simulation.

The paper's argument is quantitative — Theorem 1's message-size bounds,
Theorems 2/3's ``(v/p) * G * O(lambda*mu/(D*B))`` I/O accounting, Figure
2's fully D-parallel staggered writes — but aggregate counters cannot show
*where* I/Os happen or whether the predicted costs hold per superstep.
This package makes those claims observable:

* :mod:`repro.obs.trace` — a structured trace recorder.  Engines emit
  JSON-lines events (superstep begin/end, context read/write, message
  read/write, compute round, network transfer) tagged with real/virtual
  processor, superstep index, layout format and block counts.  The
  :data:`~repro.obs.trace.NULL_RECORDER` is a disabled no-op and every
  engine call site is guarded on ``tracer.enabled``, so tracing is
  zero-cost when off.
* :mod:`repro.obs.chrome` — exports a recorded trace as a Chrome
  trace-event JSON array (load in ``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.histograms` — per-disk utilization and parallel-I/O
  width histograms computed from :class:`repro.pdm.io_stats.IOStats`,
  making Observation 2's full-D-parallelism measurable.
* :mod:`repro.obs.costcheck` — cross-checks a measured
  :class:`repro.cgm.metrics.CostReport` against the Theorem 2/3 cost
  predictions derived from the :class:`repro.cgm.config.MachineConfig`.
* :mod:`repro.obs.metrics` — a labeled metrics registry (counters,
  gauges, timers, high-water marks) every engine run folds its accounting
  into; exports Prometheus text and JSON snapshots.  The
  :data:`~repro.obs.metrics.NULL_REGISTRY` default is a zero-cost no-op.
* :mod:`repro.obs.analyze` — per-superstep aggregation of a recorded
  trace (context vs. message blocks, width distribution, compute/I/O/
  network split, critical-path processor) with measured-vs-predicted
  Theorem 2/3 I/O envelopes per superstep.
* :mod:`repro.obs.bench_store` — the ``BENCH_<suite>.json`` benchmark
  result store (schema-versioned, env-fingerprinted) and the
  :func:`~repro.obs.bench_store.compare` regression gate.
* :mod:`repro.obs.bus` — the live telemetry bus: a drop-in
  :class:`~repro.obs.trace.JsonlRecorder` upgrade with hierarchical span
  threading, bounded-queue subscribers, synchronous listeners and an
  optional streaming JSON-lines sink; ``REPRO_TRACE`` installs one as the
  default engine tracer.
* :mod:`repro.obs.conformance` — the streaming model-conformance monitor:
  a bus listener comparing each superstep's measured parallel I/Os
  against the Theorem 2/3 budget *during* the run, emitting
  ``model_drift`` the moment a superstep exceeds it.
* :mod:`repro.obs.live` — ``repro top``: an incremental run dashboard
  fed from a trace file (optionally tailed) or an SSE stream.
* :mod:`repro.obs.server` — ``repro serve-metrics``: a stdlib HTTP
  endpoint serving live Prometheus ``/metrics`` and an SSE ``/events``
  stream of the bus.
"""

from repro.obs.bus import (
    NULL_BUS,
    EventBus,
    NullBus,
    Subscription,
    bus_from_env,
)
from repro.obs.chrome import to_chrome_events, write_chrome_trace
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import (
    NULL_RECORDER,
    JsonlRecorder,
    NullRecorder,
    TraceRecorder,
)

# costcheck/histograms/analyze/bench_store/conformance pull in the engine
# stack; the engines import repro.obs.{trace,metrics,bus} — import these
# lazily to keep the package cycle-free.  live/server are lazy to keep the
# urllib/http.server machinery out of engine runs that never serve.
_LAZY = {
    "CostCheck": "repro.obs.costcheck",
    "CostCrossCheck": "repro.obs.costcheck",
    "crosscheck_report": "repro.obs.costcheck",
    "DiskHistograms": "repro.obs.histograms",
    "TraceAnalysis": "repro.obs.analyze",
    "analyze_events": "repro.obs.analyze",
    "analyze_file": "repro.obs.analyze",
    "BenchStore": "repro.obs.bench_store",
    "compare": "repro.obs.bench_store",
    "load": "repro.obs.bench_store",
    "ConformanceMonitor": "repro.obs.conformance",
    "TopView": "repro.obs.live",
    "iter_jsonl": "repro.obs.live",
    "iter_sse": "repro.obs.live",
    "ObsServer": "repro.obs.server",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "JsonlRecorder",
    "NULL_RECORDER",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "to_chrome_events",
    "write_chrome_trace",
    "DiskHistograms",
    "CostCheck",
    "CostCrossCheck",
    "crosscheck_report",
    "TraceAnalysis",
    "analyze_events",
    "analyze_file",
    "BenchStore",
    "compare",
    "load",
    "EventBus",
    "NullBus",
    "Subscription",
    "NULL_BUS",
    "bus_from_env",
    "ConformanceMonitor",
    "TopView",
    "iter_jsonl",
    "iter_sse",
    "ObsServer",
]
