"""Chrome trace-event export: visual timelines of an engine run.

Converts the flat events of :class:`repro.obs.trace.JsonlRecorder` into
the Chrome trace-event format (the JSON-array flavour), loadable in
``chrome://tracing`` or https://ui.perfetto.dev.

Mapping:

* ``superstep_begin``/``superstep_end`` become ``B``/``E`` duration pairs
  on a dedicated "superstep" track (tid 0);
* ``span_begin``/``span_end`` (the telemetry bus's explicit spans) become
  ``B``/``E`` pairs on the same track, nesting inside their superstep;
* ``compute_round`` becomes a complete ``X`` event whose duration is the
  measured callback wall time, on the virtual processor's own track;
* context/message/network/prefetch/arena/drift events become instant
  ``i`` events carrying their tags in ``args``.

Lane assignment: single-process traces use one Chrome *process* per real
processor (``pid = real``), as before.  Traces from the multi-process
backend carry ``worker`` tags (see :func:`repro.obs.trace.replay_events`)
and get one Chrome process lane per OS worker — ``pid = 1 + worker``,
with the coordinator's own events (superstep boundaries, checkpoints) on
``pid 0`` — plus ``process_name`` metadata so the viewer labels the
lanes, instead of collapsing every worker into one unreadable track.

Timestamps are microseconds (the format's unit), taken from each event's
``ts`` field.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

#: event kinds rendered as thread-scoped instants.
_INSTANT_KINDS = {
    "context_read",
    "context_write",
    "message_write",
    "message_read",
    "network_transfer",
    "run_begin",
    "run_end",
    "prefetch",
    "arena_grow",
    "model_drift",
}


def _us(ev: dict[str, Any]) -> float:
    return float(ev.get("ts", 0.0)) * 1e6


def _cat(kind: str) -> str:
    if "message" in kind or "context" in kind or kind in ("prefetch", "arena_grow"):
        return "io"
    if kind == "model_drift":
        return "model"
    return "net"


def to_chrome_events(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Translate recorder events into Chrome trace-event dicts.

    Robust to imperfect traces: events are stably sorted by timestamp
    first (the viewers require non-decreasing ``ts`` for ``B``/``E``
    pairing), and a ``superstep_begin`` with no matching end — a crashed
    or truncated run — is auto-closed at the trace's last timestamp so the
    duration still renders instead of poisoning the whole track.
    """
    events = sorted(events, key=_us)
    last_ts = _us(events[-1]) if events else 0.0
    worker_mode = any("worker" in ev for ev in events)
    lanes: dict[int, str] = {}

    def _lane(ev: dict[str, Any]) -> int:
        if worker_mode:
            w = ev.get("worker")
            if w is not None:
                pid = 1 + int(w)
                lanes.setdefault(pid, f"worker {int(w)}")
                return pid
            lanes.setdefault(0, "coordinator")
            return 0
        return int(ev.get("real", ev.get("src_real", 0)) or 0)

    open_begins: list[dict[str, Any]] = []
    out: list[dict[str, Any]] = []
    for ev in events:
        kind = ev["kind"]
        ts = _us(ev)
        args = {
            k: v
            for k, v in ev.items()
            if k not in ("kind", "ts", "seq") and v is not None
        }
        if kind in ("superstep_begin", "span_begin"):
            name = (
                f"superstep {ev.get('superstep', '?')}"
                if kind == "superstep_begin"
                else str(ev.get("name", "span"))
            )
            begin = {
                "name": name,
                "cat": "superstep" if kind == "superstep_begin" else "span",
                "ph": "B",
                "ts": ts,
                "pid": _lane(ev),
                "tid": 0,
                "args": args,
            }
            out.append(begin)
            open_begins.append(begin)
        elif kind in ("superstep_end", "span_end"):
            if open_begins:
                open_begins.pop()
            name = (
                f"superstep {ev.get('superstep', '?')}"
                if kind == "superstep_end"
                else str(ev.get("name", "span"))
            )
            out.append(
                {
                    "name": name,
                    "cat": "superstep" if kind == "superstep_end" else "span",
                    "ph": "E",
                    "ts": ts,
                    "pid": _lane(ev),
                    "tid": 0,
                    "args": args,
                }
            )
        elif kind == "compute_round":
            dur = float(ev.get("wall_s", 0.0)) * 1e6
            out.append(
                {
                    "name": f"compute pid={ev.get('pid', '?')}",
                    "cat": "compute",
                    "ph": "X",
                    "ts": max(0.0, ts - dur),
                    "dur": dur,
                    "pid": _lane(ev),
                    "tid": 1 + int(ev.get("pid", 0)),
                    "args": args,
                }
            )
        elif kind in _INSTANT_KINDS:
            tid = (
                0
                if kind == "model_drift"
                else 1 + int(ev.get("pid", ev.get("dest", 0)) or 0)
            )
            out.append(
                {
                    "name": kind,
                    "cat": _cat(kind),
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": _lane(ev),
                    "tid": tid,
                    "args": args,
                }
            )
        # unknown kinds are dropped rather than emitting invalid phases
    # auto-close dangling begins, innermost first (E events pair LIFO)
    for begin in reversed(open_begins):
        out.append(
            {
                "name": begin["name"],
                "cat": begin["cat"],
                "ph": "E",
                "ts": max(last_ts, begin["ts"]),
                "pid": begin["pid"],
                "tid": 0,
                "args": {"auto_closed": True},
            }
        )
    if worker_mode and lanes:
        # name the per-worker process lanes; prepended so out[-1] stays
        # the trace's final real event (auto-closer included)
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
            for pid, label in sorted(lanes.items())
        ]
        out = meta + out
    return out


def write_chrome_trace(
    events: list[dict[str, Any]], path_or_file: str | TextIO
) -> int:
    """Write *events* as a Chrome trace JSON array; returns count written."""
    chrome = to_chrome_events(events)
    if hasattr(path_or_file, "write"):
        json.dump(chrome, path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(chrome, fh)
    return len(chrome)
