"""Chrome trace-event export: visual timelines of an engine run.

Converts the flat events of :class:`repro.obs.trace.JsonlRecorder` into
the Chrome trace-event format (the JSON-array flavour), loadable in
``chrome://tracing`` or https://ui.perfetto.dev.

Mapping:

* ``superstep_begin``/``superstep_end`` become ``B``/``E`` duration pairs
  on a dedicated "superstep" track (tid 0) of each real processor;
* ``compute_round`` becomes a complete ``X`` event whose duration is the
  measured callback wall time, on the virtual processor's own track;
* context/message/network events become instant ``i`` events carrying
  their tags in ``args``.

Timestamps are microseconds (the format's unit), taken from each event's
``ts`` field.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

#: event kinds rendered as thread-scoped instants.
_INSTANT_KINDS = {
    "context_read",
    "context_write",
    "message_write",
    "message_read",
    "network_transfer",
    "run_begin",
    "run_end",
}


def _us(ev: dict[str, Any]) -> float:
    return float(ev.get("ts", 0.0)) * 1e6


def to_chrome_events(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Translate recorder events into Chrome trace-event dicts.

    Robust to imperfect traces: events are stably sorted by timestamp
    first (the viewers require non-decreasing ``ts`` for ``B``/``E``
    pairing), and a ``superstep_begin`` with no matching end — a crashed
    or truncated run — is auto-closed at the trace's last timestamp so the
    duration still renders instead of poisoning the whole track.
    """
    events = sorted(events, key=_us)
    last_ts = _us(events[-1]) if events else 0.0
    open_supersteps: list[dict[str, Any]] = []
    out: list[dict[str, Any]] = []
    for ev in events:
        kind = ev["kind"]
        ts = _us(ev)
        pid = int(ev.get("real", ev.get("src_real", 0)) or 0)
        args = {
            k: v
            for k, v in ev.items()
            if k not in ("kind", "ts", "seq") and v is not None
        }
        if kind == "superstep_begin":
            begin = {
                "name": f"superstep {ev.get('superstep', '?')}",
                "cat": "superstep",
                "ph": "B",
                "ts": ts,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
            out.append(begin)
            open_supersteps.append(begin)
        elif kind == "superstep_end":
            if open_supersteps:
                open_supersteps.pop()
            out.append(
                {
                    "name": f"superstep {ev.get('superstep', '?')}",
                    "cat": "superstep",
                    "ph": "E",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
        elif kind == "compute_round":
            dur = float(ev.get("wall_s", 0.0)) * 1e6
            out.append(
                {
                    "name": f"compute pid={ev.get('pid', '?')}",
                    "cat": "compute",
                    "ph": "X",
                    "ts": max(0.0, ts - dur),
                    "dur": dur,
                    "pid": pid,
                    "tid": 1 + int(ev.get("pid", 0)),
                    "args": args,
                }
            )
        elif kind in _INSTANT_KINDS:
            tid = 1 + int(ev.get("pid", ev.get("dest", 0)) or 0)
            out.append(
                {
                    "name": kind,
                    "cat": "io" if "message" in kind or "context" in kind else "net",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        # unknown kinds are dropped rather than emitting invalid phases
    # auto-close dangling begins, innermost first (E events pair LIFO)
    for begin in reversed(open_supersteps):
        out.append(
            {
                "name": begin["name"],
                "cat": "superstep",
                "ph": "E",
                "ts": max(last_ts, begin["ts"]),
                "pid": begin["pid"],
                "tid": 0,
                "args": {"auto_closed": True},
            }
        )
    return out


def write_chrome_trace(
    events: list[dict[str, Any]], path_or_file: str | TextIO
) -> int:
    """Write *events* as a Chrome trace JSON array; returns count written."""
    chrome = to_chrome_events(events)
    if hasattr(path_or_file, "write"):
        json.dump(chrome, path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(chrome, fh)
    return len(chrome)
