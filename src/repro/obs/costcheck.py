"""Cross-checking measured costs against the Theorem 2/3 predictions.

Theorem 2 (p=1) and Theorem 3 (p processors) price one simulated CGM
algorithm with lambda communication rounds and context size mu = O(N/v):

* **supersteps** — the real machine executes ``lambda * v/p`` compound
  supersteps (Lemma 4's blow-up; doubled in balanced mode by the relay
  superstep of Algorithm 1);
* **I/O** — each simulated virtual processor reads and writes its context
  and its message traffic once per round, all fully D-parallel, giving
  ``(v/p) * lambda * O((mu + h)/(D*B))`` parallel I/Os per real processor
  — the ``(v/p) * G * O(lambda*mu/(D*B))`` I/O-time term;
* **communication** — only traffic between *different* real processors
  touches the network, at most the h-relation volume per round.

:func:`crosscheck_report` evaluates a measured
:class:`~repro.cgm.metrics.CostReport` against these predictions inside a
constant-factor envelope ``[predicted/c, predicted*c]``.  The constants
the theorems hide are real (serialization envelopes, context state beyond
the input share, partial stripes), so callers pin ``c`` explicitly; the
test suite pins ``c = 8`` for balanced sorting and fails if a regression
pushes measured I/O outside the envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgm.config import MachineConfig
from repro.cgm.metrics import CostReport
from repro.core.theory import predicted_parallel_ios

#: default constant-factor envelope for the asymptotic (I/O, comm) checks.
DEFAULT_ENVELOPE = 8.0


@dataclass(frozen=True)
class CostCheck:
    """One measured-vs-predicted comparison."""

    name: str
    measured: float
    predicted: float
    lo: float
    hi: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.lo <= self.measured <= self.hi

    def describe(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        return (
            f"[{status:>8}] {self.name}: measured {self.measured:g} vs "
            f"predicted {self.predicted:g} (envelope [{self.lo:g}, {self.hi:g}])"
            + (f"  — {self.detail}" if self.detail else "")
        )


@dataclass
class CostCrossCheck:
    """All checks for one run."""

    engine: str
    checks: list[CostCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> list[CostCheck]:
        return [c for c in self.checks if not c.ok]

    def __getitem__(self, name: str) -> CostCheck:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(name)

    def render(self) -> str:
        head = f"cost cross-check [{self.engine}]: " + (
            "all checks passed" if self.ok else f"{len(self.failures())} VIOLATED"
        )
        return "\n".join([head] + ["  " + c.describe() for c in self.checks])


# ---------------------------------------------------------------- predictions


def predicted_supersteps(
    cfg: MachineConfig, rounds: int, engine: str, balanced: bool = False
) -> int:
    """Exact real-machine superstep count implied by Lemma 4.

    ``par-em`` executes v/p compound supersteps per CGM round; every other
    backend executes one.  Balanced routing doubles both (the relay).
    """
    per_round = cfg.vprocs_per_real if engine == "par-em" else 1
    return rounds * per_round * (2 if balanced else 1)


def theorem3_predicted_ios(
    cfg: MachineConfig, rounds: int, balanced: bool = False
) -> float:
    """Theorem 2/3 parallel-I/O count per real processor.

    ``(v/p) * lambda * ((2*ceil(mu/B) + 2*ceil(h/B)) / D)`` — context and
    message traffic each read and written once per simulated virtual
    processor per round.  Balanced mode routes message traffic twice
    (source -> intermediate -> destination), doubling the message term.
    """
    base = predicted_parallel_ios(
        cfg.v, cfg.p, cfg.D, cfg.B, rounds, cfg.mu, cfg.h
    )
    if balanced:
        msg_only = predicted_parallel_ios(cfg.v, cfg.p, cfg.D, cfg.B, rounds, 0, cfg.h)
        base += msg_only
    return base


def theorem3_io_envelope(
    cfg: MachineConfig, rounds: int, c: float = DEFAULT_ENVELOPE, balanced: bool = False
) -> tuple[float, float]:
    """The ``[pred/c, pred*c]`` per-processor envelope the tests pin."""
    pred = theorem3_predicted_ios(cfg, rounds, balanced)
    return pred / c, pred * c


# ---------------------------------------------------------------- the checker


def crosscheck_report(
    report: CostReport,
    cfg: MachineConfig,
    balanced: bool = False,
    c: float = DEFAULT_ENVELOPE,
) -> CostCrossCheck:
    """Compare *report* against the Theorem 2/3 cost model.

    Checks (``c`` is the constant-factor envelope):

    * ``supersteps`` — exact (Lemma 4 is not asymptotic);
    * ``io_per_proc`` — busiest processor's parallel I/Os in the Theorem
      2/3 envelope (skipped for non-EM engines, which issue no I/O);
    * ``io_total`` — summed parallel I/Os in p times that envelope;
    * ``network_items`` — cross-processor traffic at most ``c * lambda *
      v * h`` items (and exactly 0 when p == 1).
    """
    out = CostCrossCheck(engine=report.engine)
    rounds = report.rounds

    pred_ss = predicted_supersteps(cfg, rounds, report.engine, balanced)
    out.checks.append(
        CostCheck(
            "supersteps",
            measured=report.supersteps,
            predicted=pred_ss,
            lo=pred_ss,
            hi=pred_ss,
            detail=f"lambda={rounds}, v/p={cfg.vprocs_per_real}, balanced={balanced}",
        )
    )

    if report.engine in ("seq-em", "par-em"):
        pred_io = theorem3_predicted_ios(cfg, rounds, balanced)
        lo, hi = pred_io / c, pred_io * c
        measured_max = report.io_max.parallel_ios or report.io.parallel_ios
        out.checks.append(
            CostCheck(
                "io_per_proc",
                measured=measured_max,
                predicted=pred_io,
                lo=lo,
                hi=hi,
                detail=f"(v/p)*lambda*(mu+h)/(DB) with mu={cfg.mu}, h={cfg.h}, c={c:g}",
            )
        )
        out.checks.append(
            CostCheck(
                "io_total",
                measured=report.io.parallel_ios,
                predicted=pred_io * cfg.p,
                lo=lo * cfg.p,
                hi=hi * cfg.p,
                detail=f"p={cfg.p} processors",
            )
        )

    pred_net = rounds * cfg.v * cfg.h
    hi_net = 0.0 if cfg.p == 1 else c * pred_net
    out.checks.append(
        CostCheck(
            "network_items",
            measured=report.cross_items,
            predicted=0 if cfg.p == 1 else pred_net,
            lo=0.0,
            hi=hi_net,
            detail="cross-real-processor traffic only"
            + (" (p=1: must be zero)" if cfg.p == 1 else ""),
        )
    )
    return out
