"""Lightweight labeled metrics: counters, gauges, timers, high-water marks.

The trace recorder (:mod:`repro.obs.trace`) answers *what happened when*;
this module answers *how much, per dimension*: every engine run folds its
cost accounting into a :class:`MetricsRegistry` as labeled series keyed by
engine, program and machine shape (v/p/D/B), so repeated runs — a
benchmark sweep, a CLI session, a long-lived service — accumulate into one
queryable surface that exports as Prometheus text or a JSON snapshot.

Design mirrors the tracer: the default :data:`NULL_REGISTRY` is a disabled
no-op and every engine call site is guarded on ``metrics.enabled``, so an
unmetered run never allocates a label set or touches a dict.

Series kinds:

* :class:`Counter` — monotonically increasing (``inc``);
* :class:`Gauge` — last-write-wins (``set``);
* :class:`Timer` — accumulates ``observe(seconds)`` into sum + count
  (exported Prometheus-style as ``_sum``/``_count``);
* :class:`HighWaterMark` — keeps the maximum ever ``update``-d.

Usage::

    reg = MetricsRegistry()
    reg.counter("repro_parallel_ios_total").labels(engine="seq-em").inc(42)
    print(reg.render_prometheus())
    json.dumps(reg.snapshot())
"""

from __future__ import annotations

import json
from typing import Any, TextIO

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Series:
    """One (metric, label-set) time series."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict[str, str]) -> None:
        self.labels = labels
        self.value: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {"labels": self.labels, "value": self.value}


class Counter(_Series):
    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge(_Series):
    def set(self, value: float) -> None:
        self.value = float(value)


class HighWaterMark(_Series):
    def update(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Timer(_Series):
    """Accumulating duration series (sum of seconds + observation count)."""

    __slots__ = ("count",)

    def __init__(self, labels: dict[str, str]) -> None:
        super().__init__(labels)
        self.count: int = 0

    def observe(self, seconds: float) -> None:
        self.value += float(seconds)
        self.count += 1

    def as_dict(self) -> dict[str, Any]:
        return {"labels": self.labels, "sum": self.value, "count": self.count}


#: Prometheus type names per series class.
_PROM_TYPE = {Counter: "counter", Gauge: "gauge", HighWaterMark: "gauge", Timer: "summary"}


class Metric:
    """A named family of series, one per distinct label set."""

    def __init__(self, name: str, series_cls: type[_Series], help: str = "") -> None:
        _check_name(name)
        self.name = name
        self.help = help
        self.series_cls = series_cls
        self._series: dict[_LabelKey, _Series] = {}

    def labels(self, **labels: Any) -> Any:
        """The child series for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._series.get(key)
        if child is None:
            child = self.series_cls({k: v for k, v in key})
            self._series[key] = child
        return child

    @property
    def series(self) -> list[_Series]:
        return list(self._series.values())

    @property
    def kind(self) -> str:
        return _PROM_TYPE[self.series_cls]


def _check_name(name: str) -> None:
    ok = name and (name[0].isalpha() or name[0] == "_") and all(
        c.isalnum() or c == "_" for c in name
    )
    if not ok:
        raise ValueError(f"invalid metric name {name!r} (want [a-zA-Z_][a-zA-Z0-9_]*)")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class MetricsRegistry:
    """Create-or-get metric families; export the whole surface at once."""

    enabled: bool = True

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- family constructors (idempotent) ------------------------------------

    def _get(self, name: str, cls: type[_Series], help: str) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            m = Metric(name, cls, help)
            self._metrics[name] = m
        elif m.series_cls is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {m.kind}, "
                f"cannot re-register as {_PROM_TYPE[cls]}"
            )
        return m

    def counter(self, name: str, help: str = "") -> Metric:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Metric:
        return self._get(name, Gauge, help)

    def timer(self, name: str, help: str = "") -> Metric:
        return self._get(name, Timer, help)

    def highwater(self, name: str, help: str = "") -> Metric:
        return self._get(name, HighWaterMark, help)

    # -- introspection --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    @property
    def metrics(self) -> list[Metric]:
        return list(self._metrics.values())

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of every family and series."""
        return {
            m.name: {
                "kind": m.kind,
                "help": m.help,
                "series": [s.as_dict() for s in m.series],
            }
            for m in self.metrics
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for m in self.metrics:
            if m.help:
                lines.append(f"# HELP {m.name} {_escape(m.help)}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            for s in m.series:
                tags = _fmt_labels(s.labels)
                if isinstance(s, Timer):
                    lines.append(f"{m.name}_sum{tags} {s.value:g}")
                    lines.append(f"{m.name}_count{tags} {s.count}")
                else:
                    lines.append(f"{m.name}{tags} {s.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path_or_file: str | TextIO) -> None:
        """Write the registry to *path*: ``.json`` gets the snapshot dict,
        anything else the Prometheus text format."""
        if hasattr(path_or_file, "write"):
            path_or_file.write(self.render_prometheus())  # type: ignore[union-attr]
            return
        if str(path_or_file).endswith(".json"):
            with open(path_or_file, "w", encoding="utf-8") as fh:
                json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                fh.write(self.render_prometheus())


class _ScopedMetric(Metric):
    """A family view that merges fixed labels into every series lookup.

    Caller-supplied labels win on collision so a scoped view can never
    silently shadow an explicit label.
    """

    def __init__(self, metric: Metric, scope: dict[str, str]) -> None:
        super().__init__(metric.name, metric.series_cls, metric.help)
        self._metric = metric
        self._scope = scope

    def labels(self, **labels: Any) -> Any:
        return self._metric.labels(**{**self._scope, **labels})


class ScopedRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` view that injects fixed labels.

    The job server hands each worker a scope carrying the job's tenant
    (and job id) so every engine-emitted series — parallel I/Os, rounds,
    compute seconds — lands in the shared registry with per-tenant
    labels, queryable straight off ``/metrics``.  Family registration,
    series storage and export all stay on the underlying registry; only
    ``labels()`` lookups are rewritten.
    """

    def __init__(self, registry: MetricsRegistry, **scope: Any) -> None:
        super().__init__()
        self.registry = registry
        self.scope = {k: str(v) for k, v in scope.items()}
        self.enabled = registry.enabled

    def _get(self, name: str, cls: type[_Series], help: str) -> Metric:
        return _ScopedMetric(self.registry._get(name, cls, help), self.scope)

    def __contains__(self, name: str) -> bool:
        return name in self.registry

    def __getitem__(self, name: str) -> Metric:
        return self.registry[name]

    @property
    def metrics(self) -> list[Metric]:
        return self.registry.metrics

    def snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()


class _NullSeries(_Series):
    """Accepts every mutation, records nothing."""

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def update(self, value: float) -> None:
        pass

    def observe(self, seconds: float) -> None:
        pass


class _NullMetric(Metric):
    def __init__(self) -> None:
        super().__init__("_null", _NullSeries)
        self._child = _NullSeries({})

    def labels(self, **labels: Any) -> Any:
        return self._child


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every family is a shared no-op.

    Engines check ``metrics.enabled`` before composing label dicts, so
    with this registry installed no series is ever materialized.
    """

    enabled = False

    def _get(self, name: str, cls: type[_Series], help: str) -> Metric:
        return _NULL_METRIC

    def snapshot(self) -> dict[str, Any]:
        return {}

    def render_prometheus(self) -> str:
        return ""


#: shared disabled registry — engines default to this singleton.
NULL_REGISTRY = NullRegistry()
