"""Structured trace recording for engine runs.

A recorder receives flat event dicts from the engines via :meth:`emit`.
Event kinds and their tags (all optional except ``kind``):

================== ======================================================
kind               tags
================== ======================================================
``run_begin``      engine, N, v, p, D, B, M, workers, balanced
``superstep_begin`` superstep (real-machine index), round (CGM round)
``superstep_end``  superstep, round, parallel_ios, blocks (deltas)
``compute_round``  pid, real, round, wall_s, done
``context_read``   pid, real, blocks, layout
``context_write``  pid, real, blocks, layout
``message_write``  src, dest, real, blocks, layout, parity
``message_read``   pid, real, blocks, layout, sources
``network_transfer`` src, dest, src_real, dest_real, items
``run_end``        engine, rounds, supersteps, parallel_ios
``io_fault``       real, disk, track, op, fault, attempt
``disk_dead``      real, disk, op, migrated_blocks, survivors
``checkpoint``     round, finished, path
``resume``         round, finished, path
``worker_redispatch`` round, dead_workers, restart, from_round
``span_begin``     name, free-form tags (see :meth:`TraceRecorder.span`)
``span_end``       name
``prefetch``       submitted, hits, misses (one per prefetched superstep)
``arena_grow``     real, disk, tracks, nbytes, resident_nbytes,
                   spill_nbytes, backend
``model_drift``    round, superstep, parallel_ios, predicted_ios, budget,
                   envelope_c
================== ======================================================

``layout`` is the disk format the blocks moved through: ``"consecutive"``
(contexts, overflow runs), ``"staggered"`` (the Figure 2 message matrix)
or ``"paged"`` (the VM baseline's 4 KB pager).  Events recorded inside a
worker process of the multi-core backend are replayed on the coordinator's
recorder with an extra ``worker`` tag (see :func:`replay_events`).

``prefetch`` and ``arena_grow`` are *physical* events: they describe how
the fast path serviced the logical I/O (speculative reads, storage
growth), so their presence depends on ``REPRO_FASTPATH``/``REPRO_ARENA``
/``REPRO_PREFETCH`` — like ``io_fault``, they are excluded from
cross-backend trace-identity comparisons.  ``span_*`` and ``model_drift``
are produced by the live telemetry bus (:mod:`repro.obs.bus`), which
additionally threads hierarchical ``span``/``parent`` ids through every
``*_begin``/``*_end`` pair it sees.

The ``io_fault`` .. ``worker_redispatch`` kinds come from the resilience subsystem
(:mod:`repro.faults`): ``io_fault`` marks one injected single-track
failure (``fault`` is the injected kind, ``attempt`` the retry ordinal),
``disk_dead`` a permanent disk loss and its block migration,
``checkpoint``/``resume`` the round-boundary snapshot protocol, and
``worker_redispatch`` a coordinator recovery after a worker process died.

Engines guard every emission on :attr:`TraceRecorder.enabled`, so a run
with the :data:`NULL_RECORDER` never builds an event dict — the disabled
path costs one attribute read per call site.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator, TextIO


class TraceRecorder:
    """Interface: engines call :meth:`emit`; exporters read :attr:`events`."""

    #: call sites skip event construction entirely when False.
    enabled: bool = True

    def emit(self, kind: str, **tags: Any) -> None:
        raise NotImplementedError

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[None]:
        """Emit a ``span_begin``/``span_end`` pair around a code region.

        Disabled recorders skip both emissions, so instrumentation can
        wrap hot paths without its own ``enabled`` guard (the context
        manager itself still allocates — guard manually in the hottest
        loops).  The :class:`~repro.obs.bus.EventBus` threads hierarchical
        span ids through the pair; plain recorders just record the events.
        """
        if not self.enabled:
            yield
            return
        self.emit("span_begin", name=name, **tags)
        try:
            yield
        finally:
            self.emit("span_end", name=name)

    def close(self) -> None:  # pragma: no cover - trivial default
        """Flush any buffered output (no-op for in-memory recorders)."""


class NullRecorder(TraceRecorder):
    """The disabled recorder: records nothing, costs nothing.

    Engines check ``tracer.enabled`` before building event payloads, so
    with this recorder installed no event dict is ever allocated.
    """

    enabled = False

    def emit(self, kind: str, **tags: Any) -> None:
        pass


#: shared disabled recorder — engines default to this singleton.
NULL_RECORDER = NullRecorder()


class JsonlRecorder(TraceRecorder):
    """In-memory recorder with JSON-lines and Chrome-trace export.

    Every event gets a monotonically increasing ``seq`` and a ``ts``
    (seconds since the recorder was created, ``time.perf_counter`` base),
    so traces are totally ordered even when wall-clock resolution is
    coarse.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._t0 = time.perf_counter()
        self._seq = 0

    def emit(self, kind: str, **tags: Any) -> None:
        ev: dict[str, Any] = {
            "seq": self._seq,
            "ts": time.perf_counter() - self._t0,
            "kind": kind,
        }
        ev.update(tags)
        self._seq += 1
        self.events.append(ev)

    # -- export -------------------------------------------------------------

    def write_jsonl(self, path_or_file: str | TextIO) -> int:
        """Write one JSON object per line; returns the event count."""
        if hasattr(path_or_file, "write"):
            self._dump_jsonl(path_or_file)  # type: ignore[arg-type]
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                self._dump_jsonl(fh)
        return len(self.events)

    def _dump_jsonl(self, fh: TextIO) -> None:
        for ev in self.events:
            fh.write(json.dumps(ev, default=_jsonable) + "\n")

    def write_chrome(self, path_or_file: str | TextIO) -> int:
        """Write the Chrome trace-event JSON array; returns event count."""
        from repro.obs.chrome import write_chrome_trace

        return write_chrome_trace(self.events, path_or_file)

    def counts(self) -> dict[str, int]:
        """Number of recorded events per kind (handy in tests/CLI)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev["kind"]] = out.get(ev["kind"], 0) + 1
        return out

    def drain(self) -> list[dict[str, Any]]:
        """Return and clear the buffered events.

        Worker processes of the multi-core backend drain their recorder
        after every round and ship the events to the coordinator, which
        re-emits them via :func:`replay_events`.
        """
        out = self.events
        self.events = []
        return out


def _jsonable(obj: Any) -> Any:
    """JSON fallback for numpy scalars and other simple objects."""
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


def replay_events(
    recorder: TraceRecorder, events: list[dict[str, Any]], **extra_tags: Any
) -> None:
    """Re-emit *events* (drained from another recorder) on *recorder*.

    The source recorder's ``seq``/``ts`` bookkeeping is stripped — the
    receiving recorder assigns its own ordering — and *extra_tags* (e.g.
    ``worker=3``) are attached to every event.
    """
    if not recorder.enabled:
        return
    for ev in events:
        tags = {k: v for k, v in ev.items() if k not in ("seq", "ts", "kind")}
        tags.update(extra_tags)
        recorder.emit(ev["kind"], **tags)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a trace written by :meth:`JsonlRecorder.write_jsonl`."""
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
