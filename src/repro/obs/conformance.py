"""Streaming model conformance: Theorem 2/3 envelopes checked *during* a run.

``repro analyze`` holds a finished trace to the Theorem 2/3 per-superstep
I/O envelope after the fact.  For long out-of-core runs that is too late:
a mis-scheduled layout or a degenerate parameter choice can burn hours of
I/O before anyone reads the trace.  :class:`ConformanceMonitor` is a
synchronous :class:`~repro.obs.bus.EventBus` listener that recomputes the
same budget from the ``run_begin`` header and compares every
``superstep_end``'s ``parallel_ios`` counter against it in-stream,
emitting a ``model_drift`` event the moment a superstep exceeds its
predicted parallel-I/O budget — before the run ends, visible to every
subscriber (``repro top``, the SSE endpoint) and recorded in the trace.

Determinism: the check consumes only the deterministic logical counters
(`parallel_ios` is bit-identical across the seq / in-process par /
multi-process backends), so a drifting run drifts identically everywhere.
Only the upper edge of the envelope is monitored live — a run using
*fewer* I/Os than predicted is not a failure mode worth interrupting;
``repro analyze`` still reports two-sided envelope violations post-hoc.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.bus import EventBus

#: engines whose I/O counters are meaningful PDM costs (matches analyze).
_EM_ENGINES = ("seq-em", "par-em")


class ConformanceMonitor:
    """Per-run streaming budget check; attach via ``bus.add_listener``.

    The budget is ``theorem3_predicted_ios(cfg, 1, balanced) * p *
    envelope_c``: the Theorem 2/3 per-round prediction summed over the
    ``p`` real processors (the trace counters aggregate every
    processor's disks), scaled by the same constant-factor envelope
    ``repro analyze`` uses.
    """

    def __init__(
        self, bus: "EventBus", envelope_c: "float | None" = None
    ) -> None:
        from repro.obs.costcheck import DEFAULT_ENVELOPE

        self.bus = bus
        self.envelope_c = float(
            DEFAULT_ENVELOPE if envelope_c is None else envelope_c
        )
        self.predicted_ios: "float | None" = None
        self.budget: "float | None" = None
        self.supersteps_checked = 0
        self.drift_events = 0

    def on_event(self, ev: dict[str, Any]) -> None:
        kind = ev.get("kind")
        if kind == "run_begin":
            self._configure(ev)
        elif kind == "superstep_end" and self.budget is not None:
            ios = int(ev.get("parallel_ios", 0) or 0)
            self.supersteps_checked += 1
            if ios > self.budget:
                self.drift_events += 1
                self.bus.emit(
                    "model_drift",
                    round=ev.get("round"),
                    superstep=ev.get("superstep"),
                    parallel_ios=ios,
                    predicted_ios=self.predicted_ios,
                    budget=self.budget,
                    envelope_c=self.envelope_c,
                )

    def _configure(self, ev: dict[str, Any]) -> None:
        """Derive the per-superstep budget from the run header (or disarm)."""
        self.predicted_ios = None
        self.budget = None
        self.supersteps_checked = 0
        self.drift_events = 0
        if str(ev.get("engine")) not in _EM_ENGINES:
            return
        if not all(isinstance(ev.get(k), int) for k in ("N", "v", "p", "D", "B")):
            return
        from repro.cgm.config import MachineConfig
        from repro.obs.costcheck import theorem3_predicted_ios

        try:
            cfg = MachineConfig(
                N=ev["N"], v=ev["v"], p=ev["p"], D=ev["D"], B=ev["B"],
                M=ev.get("M"),
            )
        except Exception:
            return  # replayed/hand-edited header: observe, don't judge
        balanced = bool(ev.get("balanced", False))
        self.predicted_ios = theorem3_predicted_ios(cfg, 1, balanced) * cfg.p
        self.budget = self.predicted_ios * self.envelope_c
