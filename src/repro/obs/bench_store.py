"""Machine-readable benchmark results: the ``BENCH_<suite>.json`` store.

The benchmark modules print paper-style tables for humans; this module
makes the same numbers durable and comparable.  A :class:`BenchStore`
collects *points* — one named measurement each, carrying the machine
configuration, the measured cost counters (exact, deterministic), the
Theorem 2/3 predicted envelopes and any wall-clock timings (fuzzy, this
machine's) — and writes them as one schema-versioned JSON document with an
environment fingerprint.  :func:`compare` is the regression gate: I/O
counts are deterministic simulation outputs and must match within
``io_rtol`` (default exact); timings are hardware-dependent and are
checked within ``time_rtol`` or skipped.

Document layout (``SCHEMA_VERSION`` 1)::

    {
      "schema_version": 1,
      "suite": "fig3_vm_vs_em",
      "created_unix": 1770000000.0,
      "env": {"python": "...", "platform": "...", "numpy": "..."},
      "points": [
        {
          "name": "sort/N=65536",
          "machine": {"N": ..., "v": ..., "p": ..., "D": ..., "B": ..., "M": ...},
          "measured": {"parallel_ios": 812, "blocks_total": 1624, ...},
          "predicted": {"parallel_ios": 768.0, "io_lo": 96.0, "io_hi": 6144.0},
          "timings": {"wall_s": 0.13}
        }, ...
      ]
    }
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any

SCHEMA_VERSION = 1

#: measured keys gated exactly (deterministic counters); everything else in
#: ``measured`` is still gated with ``io_rtol`` — these are just the usual
#: names produced by :func:`measured_from_report`.
_REQUIRED_POINT_KEYS = ("name", "measured")
_REQUIRED_DOC_KEYS = ("schema_version", "suite", "env", "points")


def env_fingerprint() -> dict[str, str]:
    """Where these numbers came from (for artifact provenance, not gating)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "argv0": sys.argv[0] if sys.argv else "",
    }


def measured_from_report(report) -> dict[str, Any]:
    """The deterministic cost counters of a :class:`CostReport`."""
    return {
        "engine": report.engine,
        "rounds": report.rounds,
        "supersteps": report.supersteps,
        "parallel_ios": report.io.parallel_ios,
        "parallel_ios_max_proc": report.io_max.parallel_ios,
        "blocks_total": report.io.blocks_total,
        "comm_items": report.comm_items,
        "cross_items": report.cross_items,
        "context_blocks_io": report.context_blocks_io,
        "message_blocks_io": report.message_blocks_io,
        "overflow_blocks": report.overflow_blocks,
        "page_faults": report.page_faults,
        "peak_memory_items": report.peak_memory_items,
    }


def predicted_from(cfg, rounds: int, balanced: bool = False) -> dict[str, Any]:
    """Theorem 2/3 envelope for a run of *rounds* CGM rounds on *cfg*."""
    from repro.obs.costcheck import (
        DEFAULT_ENVELOPE,
        theorem3_io_envelope,
        theorem3_predicted_ios,
    )

    pred = theorem3_predicted_ios(cfg, rounds, balanced)
    lo, hi = theorem3_io_envelope(cfg, rounds, balanced=balanced)
    return {
        "parallel_ios_per_proc": pred,
        "io_lo": lo,
        "io_hi": hi,
        "envelope_c": DEFAULT_ENVELOPE,
        "rounds": rounds,
        "balanced": balanced,
    }


def machine_dict(cfg) -> dict[str, Any]:
    return {
        "N": cfg.N,
        "v": cfg.v,
        "p": cfg.p,
        "D": cfg.D,
        "B": cfg.B,
        "M": cfg.M,
        "g": cfg.g,
        "G": cfg.G,
        "L": cfg.L,
        "seed": cfg.seed,
    }


class BenchStore:
    """Accumulates benchmark points for one suite and writes the JSON."""

    def __init__(self, suite: str) -> None:
        self.suite = suite
        self.points: list[dict[str, Any]] = []

    def record(
        self,
        name: str,
        cfg=None,
        report=None,
        measured: dict[str, Any] | None = None,
        predicted: dict[str, Any] | None = None,
        timings: dict[str, float] | None = None,
        balanced: bool = False,
        **extra: Any,
    ) -> dict[str, Any]:
        """Add one point.  *cfg* fills ``machine``; *report* fills the
        measured counters and (with *cfg*) the predicted envelope; explicit
        dicts override/extend both."""
        point: dict[str, Any] = {"name": str(name)}
        if cfg is not None:
            point["machine"] = machine_dict(cfg)
        m: dict[str, Any] = measured_from_report(report) if report is not None else {}
        if measured:
            m.update(measured)
        point["measured"] = m
        p: dict[str, Any] = (
            predicted_from(cfg, report.rounds, balanced)
            if (cfg is not None and report is not None and report.io.parallel_ios)
            else {}
        )
        if predicted:
            p.update(predicted)
        if p:
            point["predicted"] = p
        if timings:
            point["timings"] = {k: float(v) for k, v in timings.items()}
        if extra:
            point["extra"] = extra
        self.points.append(point)
        return point

    def document(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "created_unix": time.time(),
            "env": env_fingerprint(),
            "points": self.points,
        }

    def write(self, directory: str = ".") -> str:
        """Write ``<directory>/BENCH_<suite>.json``; returns the path."""
        import os

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.suite}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.document(), fh, indent=2, sort_keys=True, default=_jsonable)
            fh.write("\n")
        return path


def _jsonable(obj: Any) -> Any:
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    return str(obj)


# ------------------------------------------------------------------ validation


def validate_document(doc: Any) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key in _REQUIRED_DOC_KEYS:
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if doc["schema_version"] != SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc['schema_version']!r} != supported {SCHEMA_VERSION}"
        )
    if not isinstance(doc["suite"], str) or not doc["suite"]:
        errors.append("suite must be a non-empty string")
    if not isinstance(doc["env"], dict):
        errors.append("env must be an object")
    if not isinstance(doc["points"], list):
        errors.append("points must be an array")
        return errors
    names: set[str] = set()
    for i, point in enumerate(doc["points"]):
        where = f"points[{i}]"
        if not isinstance(point, dict):
            errors.append(f"{where} must be an object")
            continue
        for key in _REQUIRED_POINT_KEYS:
            if key not in point:
                errors.append(f"{where} missing key {key!r}")
        name = point.get("name")
        if isinstance(name, str):
            if name in names:
                errors.append(f"{where} duplicate point name {name!r}")
            names.add(name)
        if not isinstance(point.get("measured", {}), dict):
            errors.append(f"{where}.measured must be an object")
        for opt in ("machine", "predicted", "timings", "extra"):
            if opt in point and not isinstance(point[opt], dict):
                errors.append(f"{where}.{opt} must be an object")
    return errors


def load(path: str) -> dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` document."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_document(doc)
    if errors:
        raise ValueError(f"{path}: invalid benchmark document:\n  " + "\n  ".join(errors))
    return doc


# ------------------------------------------------------------------ comparison


@dataclass(frozen=True)
class Mismatch:
    """One gated value that moved outside its tolerance."""

    point: str
    key: str
    old: float
    new: float
    rtol: float
    kind: str  # "measured" | "timing" | "timing-floor" | "missing"

    def describe(self) -> str:
        if self.kind == "missing":
            return f"[{self.point}] {self.key}"
        delta = (self.new - self.old) / self.old if self.old else float("inf")
        bound = (
            f"floor {self.old * (1 - self.rtol):g}"
            if self.kind == "timing-floor"
            else f"tolerance {self.rtol:.1%}"
        )
        return (
            f"[{self.point}] {self.kind} {self.key}: {self.old:g} -> {self.new:g} "
            f"({delta:+.1%}, {bound})"
        )


@dataclass
class CompareResult:
    """Outcome of gating *new* against the *old* baseline."""

    suite: str
    regressions: list[Mismatch] = field(default_factory=list)
    compared_values: int = 0
    compared_points: int = 0
    env_changed: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        head = (
            f"bench compare [{self.suite}]: "
            + (
                f"OK — {self.compared_values} values across "
                f"{self.compared_points} points within tolerance"
                if self.ok
                else f"{len(self.regressions)} REGRESSION(S)"
            )
        )
        lines = [head]
        lines.extend("  " + r.describe() for r in self.regressions)
        if self.env_changed:
            lines.append(
                "  note: environment changed (" + ", ".join(self.env_changed) + ")"
            )
        return "\n".join(lines)


def _within(old: float, new: float, rtol: float) -> bool:
    if old == new:
        return True
    return abs(new - old) <= rtol * max(abs(old), 1e-12)


def compare(
    old: dict[str, Any],
    new: dict[str, Any],
    io_rtol: float = 0.0,
    time_rtol: float | None = 0.5,
    timing_floor: float | None = None,
) -> CompareResult:
    """Gate *new* against baseline *old*.

    Every numeric key in each point's ``measured`` dict must agree within
    ``io_rtol`` (relative; 0.0 = exact — the simulation is deterministic).
    ``timings`` values are checked within ``time_rtol``, or ignored when it
    is ``None``.  Points present in the baseline but absent from the new
    run are regressions (coverage must not silently shrink); new extra
    points are fine.

    When ``timing_floor`` is given it replaces the symmetric timing check
    with a one-sided one for higher-is-better timing metrics (speedup
    ratios): a timing regresses only when ``new < old * (1 -
    timing_floor)``.  Arbitrarily large improvements never fail the gate.
    """
    for doc in (old, new):
        errors = validate_document(doc)
        if errors:
            raise ValueError("invalid benchmark document:\n  " + "\n  ".join(errors))
    out = CompareResult(suite=new.get("suite", "?"))
    out.env_changed = [
        k
        for k in sorted(set(old.get("env", {})) | set(new.get("env", {})))
        if k != "argv0" and old.get("env", {}).get(k) != new.get("env", {}).get(k)
    ]
    new_points = {p["name"]: p for p in new["points"]}
    for old_point in old["points"]:
        name = old_point["name"]
        new_point = new_points.get(name)
        if new_point is None:
            out.regressions.append(
                Mismatch(name, "point missing from new run", 0, 0, 0, "missing")
            )
            continue
        out.compared_points += 1
        for key, old_val in old_point.get("measured", {}).items():
            new_val = new_point.get("measured", {}).get(key)
            if not isinstance(old_val, (int, float)) or isinstance(old_val, bool):
                continue  # engine names etc.: provenance, not gated
            if new_val is None or not isinstance(new_val, (int, float)):
                out.regressions.append(
                    Mismatch(name, f"measured {key} missing", 0, 0, 0, "missing")
                )
                continue
            out.compared_values += 1
            if not _within(float(old_val), float(new_val), io_rtol):
                out.regressions.append(
                    Mismatch(name, key, float(old_val), float(new_val), io_rtol, "measured")
                )
        if time_rtol is None and timing_floor is None:
            continue
        for key, old_val in old_point.get("timings", {}).items():
            new_val = new_point.get("timings", {}).get(key)
            if new_val is None:
                continue  # timing coverage may vary with hardware counters
            out.compared_values += 1
            if timing_floor is not None:
                if float(new_val) < float(old_val) * (1 - timing_floor):
                    out.regressions.append(
                        Mismatch(
                            name,
                            key,
                            float(old_val),
                            float(new_val),
                            timing_floor,
                            "timing-floor",
                        )
                    )
            elif time_rtol is not None and not _within(
                float(old_val), float(new_val), time_rtol
            ):
                out.regressions.append(
                    Mismatch(name, key, float(old_val), float(new_val), time_rtol, "timing")
                )
    return out
