"""Live telemetry: an in-process structured event bus with spans.

:class:`EventBus` is a drop-in :class:`~repro.obs.trace.TraceRecorder`
(it subclasses :class:`~repro.obs.trace.JsonlRecorder`, so every export
path — ``--trace`` jsonl/chrome files, ``repro analyze``, the worker
replay protocol — keeps working), upgraded from a flight recorder into a
live instrument:

* **hierarchical spans** — every ``*_begin``/``*_end`` pair the bus sees
  (``run``, ``superstep``, explicit :meth:`~repro.obs.trace.TraceRecorder.span`
  regions) is threaded with a deterministic ``span`` id and its
  ``parent``, and every other event is tagged with the span it happened
  inside.  Worker events replayed by the coordinator (see
  :func:`repro.obs.trace.replay_events`) arrive between the round's
  ``superstep_begin``/``superstep_end`` and are parented into the round's
  span, merging the per-worker streams into one causally-ordered
  timeline.
* **subscribers with bounded-queue backpressure** — :meth:`EventBus.subscribe`
  returns a :class:`Subscription`: a bounded queue that drops its
  *oldest* event (and counts the drop) rather than blocking the engine.
  The SSE endpoint of :mod:`repro.obs.server` and ``repro top`` are
  subscribers.
* **synchronous listeners** — :meth:`EventBus.add_listener` callbacks run
  in-stream on the emitting thread; the streaming
  :class:`~repro.obs.conformance.ConformanceMonitor` (attached by
  default) uses this to emit ``model_drift`` the moment a superstep
  exceeds its Theorem 2/3 parallel-I/O budget, deterministically before
  the run ends.
* **optional streaming sink** — pass ``sink=<path or file>`` to write
  (and flush) each event as a JSON line the moment it is emitted, so
  ``repro top --follow`` can tail a live run.

The disabled path stays strictly no-op: :data:`NULL_BUS` (a
:class:`~repro.obs.trace.NullRecorder`) allocates no queues, no span
stack and no events, and engines guard every call site on
``tracer.enabled`` — identical cost to the pre-bus ``NULL_RECORDER``.

The ``REPRO_TRACE`` environment variable turns the bus on without code
changes: any truthy value installs an :class:`EventBus` as the default
tracer of :func:`repro.em.runner.make_engine`; a value that is not a bare
boolean token is treated as a sink path (``REPRO_TRACE=/tmp/run.jsonl``
streams the trace there live).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterator, TextIO

from repro.obs.trace import JsonlRecorder, NullRecorder, _jsonable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.conformance import ConformanceMonitor

#: event kinds that open / close a hierarchical span.
_OPENERS = frozenset({"run_begin", "superstep_begin", "span_begin"})
_CLOSERS = frozenset({"run_end", "superstep_end", "span_end"})

_TRUE = frozenset({"1", "true", "yes", "on"})


class Subscription:
    """A bounded event queue fed by an :class:`EventBus`.

    Backpressure policy: the queue never blocks the emitting engine —
    when full, the *oldest* buffered event is dropped and
    :attr:`dropped` incremented, so a slow consumer sees a gap (it can
    detect one via the ``seq`` tags) instead of stalling the simulation.
    """

    def __init__(
        self,
        bus: "EventBus | None",
        maxlen: int = 1024,
        kinds: "frozenset[str] | None" = None,
    ) -> None:
        if maxlen < 1:
            raise ValueError(f"subscription maxlen must be >= 1, got {maxlen}")
        self._bus = bus
        self.maxlen = maxlen
        self.kinds = kinds
        self.dropped = 0
        self._q: deque[dict[str, Any]] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # -- bus side ----------------------------------------------------------

    def _put(self, ev: dict[str, Any]) -> None:
        if self.kinds is not None and ev.get("kind") not in self.kinds:
            return
        with self._cond:
            if self._closed:
                return
            if len(self._q) >= self.maxlen:
                self._q.popleft()
                self.dropped += 1
            self._q.append(ev)
            self._cond.notify()

    # -- consumer side -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def qsize(self) -> int:
        with self._cond:
            return len(self._q)

    def get(self, timeout: "float | None" = None) -> "dict[str, Any] | None":
        """Next event, blocking up to *timeout* seconds (``None`` = forever).

        Returns ``None`` on timeout or once the subscription is closed
        and drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._q and not self._closed:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        return None
                    self._cond.wait(remaining)
            if self._q:
                return self._q.popleft()
            return None

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Yield events until the subscription is closed and drained."""
        while True:
            ev = self.get()
            if ev is None:
                return
            yield ev

    def close(self) -> None:
        """Detach from the bus and wake any blocked :meth:`get` (idempotent)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        bus, self._bus = self._bus, None
        if bus is not None:
            bus._unsubscribe(self)


class EventBus(JsonlRecorder):
    """The live telemetry bus — see the module docstring.

    Parameters:

    * *sink* — optional path or file object; every event is written (and
      flushed) as a JSON line the moment it is emitted.
    * *monitor* — attach the streaming
      :class:`~repro.obs.conformance.ConformanceMonitor` (default on).
    * *envelope_c* — the monitor's Theorem 2/3 envelope constant
      (default :data:`repro.obs.costcheck.DEFAULT_ENVELOPE`).
    * *record* — keep events in :attr:`events` for post-run export
      (default on; turn off for unbounded streaming-only runs).
    """

    def __init__(
        self,
        sink: "str | TextIO | None" = None,
        monitor: bool = True,
        envelope_c: "float | None" = None,
        record: bool = True,
    ) -> None:
        super().__init__()
        self._record = record
        self._listeners: list[Callable[[dict[str, Any]], None]] = []
        self._subs: tuple[Subscription, ...] = ()
        self._subs_lock = threading.Lock()
        self._span_stack: list[int] = []
        self._next_span = 0
        self.listener_errors = 0
        self._closed = False
        self._sink: "TextIO | None" = None
        self._own_sink = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink = sink  # type: ignore[assignment]
            else:
                self._sink = open(sink, "w", encoding="utf-8")  # type: ignore[arg-type]
                self._own_sink = True
        self.monitor: "ConformanceMonitor | None" = None
        if monitor:
            from repro.obs.conformance import ConformanceMonitor

            self.monitor = ConformanceMonitor(self, envelope_c=envelope_c)
            self._listeners.append(self.monitor.on_event)

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, **tags: Any) -> None:
        ev: dict[str, Any] = {
            "seq": self._seq,
            "ts": time.perf_counter() - self._t0,
            "kind": kind,
        }
        ev.update(tags)
        self._seq += 1
        stack = self._span_stack
        if kind in _OPENERS:
            sid = self._next_span
            self._next_span += 1
            ev["span"] = sid
            if stack:
                ev["parent"] = stack[-1]
            stack.append(sid)
        elif kind in _CLOSERS:
            if stack:
                ev["span"] = stack.pop()
                if stack:
                    ev["parent"] = stack[-1]
        elif stack:
            ev["span"] = stack[-1]
        if self._record:
            self.events.append(ev)
        sink = self._sink
        if sink is not None:
            sink.write(json.dumps(ev, default=_jsonable) + "\n")
            sink.flush()
        for sub in self._subs:
            sub._put(ev)
        # listeners last: a listener that emits (the conformance monitor's
        # model_drift) produces events sequenced *after* the one it reacts
        # to, for recorders and subscribers alike
        for cb in tuple(self._listeners):
            try:
                cb(ev)
            except Exception:
                self.listener_errors += 1

    # -- subscribers and listeners ----------------------------------------

    def subscribe(
        self, maxlen: int = 1024, kinds: "frozenset[str] | set[str] | None" = None
    ) -> Subscription:
        """Attach a bounded queue receiving every subsequent event."""
        sub = Subscription(
            self, maxlen=maxlen, kinds=frozenset(kinds) if kinds else None
        )
        with self._subs_lock:
            self._subs = self._subs + (sub,)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._subs_lock:
            self._subs = tuple(s for s in self._subs if s is not sub)

    @property
    def subscriptions(self) -> int:
        return len(self._subs)

    def add_listener(self, cb: Callable[[dict[str, Any]], None]) -> None:
        """Attach a synchronous callback run in-stream for every event."""
        self._listeners.append(cb)

    def remove_listener(self, cb: Callable[[dict[str, Any]], None]) -> None:
        self._listeners = [f for f in self._listeners if f is not cb]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close every subscription and the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._subs_lock:
            subs = self._subs
        for sub in subs:
            sub.close()
        sink = self._sink
        if sink is not None and self._own_sink:
            self._sink = None
            sink.close()


class NullBus(NullRecorder):
    """The disabled bus: no queues, no span stack, no events — ever.

    Subscribing to a disabled bus is a caller bug (the events would never
    come), so it raises instead of returning a queue that silently stays
    empty.
    """

    def subscribe(
        self, maxlen: int = 1024, kinds: "frozenset[str] | set[str] | None" = None
    ) -> Subscription:
        raise RuntimeError("cannot subscribe to the disabled NULL_BUS")

    def add_listener(self, cb: Callable[[dict[str, Any]], None]) -> None:
        raise RuntimeError("cannot attach a listener to the disabled NULL_BUS")


#: shared disabled bus — interchangeable with NULL_RECORDER.
NULL_BUS = NullBus()


def trace_env_spec() -> "str | None":
    """The ``REPRO_TRACE`` setting, or ``None`` when tracing is off.

    Off (the default) when unset or a false token (``0/false/no/off``);
    any other value enables the bus.  Read through the centralized knob
    layer (:mod:`repro.tune.knobs`).
    """
    from repro.tune.runtime import current

    return current().trace


def bus_from_env() -> "EventBus | None":
    """An :class:`EventBus` per ``REPRO_TRACE``, or ``None`` when off.

    A bare boolean token (``1/true/yes/on``) records in memory; anything
    else is a sink path the trace streams to as JSON lines.
    """
    spec = trace_env_spec()
    if spec is None:
        return None
    sink = None if spec.lower() in _TRUE else spec
    return EventBus(sink=sink)
