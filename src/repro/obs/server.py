"""``repro serve-metrics``: a stdlib HTTP endpoint for live runs.

The first concrete brick of the ROADMAP's simulation-as-a-service item:
a small :mod:`http.server`-based endpoint (no dependencies) exposing a
running simulation's telemetry:

* ``GET /metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry` in
  Prometheus text exposition format (0.0.4), scrape-ready;
* ``GET /events`` — a Server-Sent-Events stream of the
  :class:`~repro.obs.bus.EventBus`: buffered events are replayed first
  (``?replay=0`` to skip), then live events follow as they are emitted.
  Each frame carries the event's ``seq`` as the SSE ``id``, so gaps from
  the bus's drop-oldest backpressure are detectable client-side;
* ``GET /healthz`` — liveness plus event/subscriber counts.

The server runs on daemon threads (:class:`ThreadingHTTPServer`) and
never blocks the simulation: SSE clients consume through a bounded
:class:`~repro.obs.bus.Subscription`.  :meth:`ObsServer.close` wakes
streaming handlers (their subscriptions close and a poll flag flips) and
shuts the listener down cleanly.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import _jsonable

#: seconds an idle SSE stream waits between keepalive comments; short so
#: close() is observed promptly even without traffic.
_SSE_POLL_S = 0.5
#: one keepalive comment roughly every this many idle polls.
_SSE_KEEPALIVE_POLLS = 10


class _ObsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the bus/registry for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        addr: tuple[str, int],
        bus: "EventBus | None",
        registry: "MetricsRegistry | None",
    ) -> None:
        super().__init__(addr, _Handler)
        self.obs_bus = bus
        self.obs_registry = registry
        self.obs_closing = threading.Event()


class _Handler(BaseHTTPRequestHandler):
    server: _ObsHTTPServer

    # CI smoke and tests scrape repeatedly; default request logging would
    # drown the run's own output
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _text(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        try:
            if url.path == "/metrics":
                self._metrics()
            elif url.path == "/events":
                self._events(parse_qs(url.query))
            elif url.path in ("/", "/healthz"):
                self._healthz()
            else:
                self._text(404, "not found\n", "text/plain; charset=utf-8")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def _metrics(self) -> None:
        registry = self.server.obs_registry
        if registry is None:
            self._text(503, "no metrics registry attached\n",
                       "text/plain; charset=utf-8")
            return
        self._text(
            200, registry.render_prometheus(),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _healthz(self) -> None:
        bus = self.server.obs_bus
        body = json.dumps(
            {
                "status": "ok",
                "events": len(bus.events) if bus is not None else 0,
                "subscribers": bus.subscriptions if bus is not None else 0,
            }
        )
        self._text(200, body + "\n", "application/json")

    def _events(self, query: dict[str, list[str]]) -> None:
        bus = self.server.obs_bus
        if bus is None:
            self._text(503, "no event bus attached\n",
                       "text/plain; charset=utf-8")
            return
        replay = query.get("replay", ["1"])[0] not in ("0", "false", "no")
        # subscribe *before* snapshotting the buffer so no event falls in
        # the gap; the seq guard below drops any overlap
        sub = bus.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.end_headers()
            last_seq = -1
            if replay:
                for ev in list(bus.events):
                    self._frame(ev)
                    last_seq = int(ev.get("seq", last_seq))
            idle = 0
            while not self.server.obs_closing.is_set():
                ev = sub.get(timeout=_SSE_POLL_S)
                if ev is None:
                    if sub.closed:
                        self.wfile.write(b"event: end\ndata: {}\n\n")
                        self.wfile.flush()
                        return
                    idle += 1
                    if idle >= _SSE_KEEPALIVE_POLLS:
                        # comment frame: keeps proxies open, detects a
                        # dead client via the raised BrokenPipeError
                        self.wfile.write(b": keepalive\n\n")
                        self.wfile.flush()
                        idle = 0
                    continue
                idle = 0
                if int(ev.get("seq", -1)) <= last_seq:
                    continue  # already replayed from the buffer
                self._frame(ev)
        finally:
            sub.close()

    def _frame(self, ev: dict[str, Any]) -> None:
        data = json.dumps(ev, default=_jsonable)
        self.wfile.write(
            f"id: {ev.get('seq', 0)}\nevent: trace\ndata: {data}\n\n".encode()
        )
        self.wfile.flush()


class ObsServer:
    """The live-telemetry HTTP endpoint; see the module docstring.

    ``port=0`` (the default) picks a free port — read :attr:`port` /
    :attr:`url` after construction.
    """

    def __init__(
        self,
        bus: "EventBus | None" = None,
        registry: "MetricsRegistry | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.bus = bus
        self.registry = registry
        self._httpd = _ObsHTTPServer((host, port), bus, registry)
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread: "threading.Thread | None" = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving: wake SSE streams, shut the listener down (idempotent)."""
        if self._httpd.obs_closing.is_set():
            return
        self._httpd.obs_closing.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
