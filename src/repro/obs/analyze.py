"""Trace analysis: turn a recorded event stream into per-superstep answers.

PR 1's recorder produces raw events; this module aggregates them back into
the quantities the paper argues about, per real-machine superstep group
(one ``superstep_begin``/``superstep_end`` pair per CGM round):

* measured parallel I/Os and blocks moved, split into **context** vs.
  **message** traffic (the two terms of Theorem 2/3's ``(mu + h)/(D*B)``);
* the **I/O width distribution** (how D-parallel the I/Os were, when the
  trace carries ``width_hist``);
* the **compute / I/O / network time split**: measured callback wall time
  against modeled I/O time (``G``-equivalent from the 1998 disk model) and
  modeled network time (``g`` per cross-processor item);
* the **critical-path real processor** — the processor whose callbacks
  dominated each superstep's wall time;
* measured-vs-predicted per-superstep I/O: each round is held to the
  Theorem 2/3 envelope ``[pred/c, pred*c]`` (scaled by ``p`` because the
  trace's counters sum over real processors), and violations are flagged.

Use :func:`analyze_file` on a ``--trace`` JSON-lines file, or
:func:`analyze_events` on in-memory recorder events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.tables import format_table

#: engines whose I/O counters are meaningful PDM costs.
_EM_ENGINES = ("seq-em", "par-em")


@dataclass
class SuperstepAgg:
    """Aggregated view of one real-machine superstep group (one CGM round)."""

    round: int
    superstep: int                  #: cumulative superstep count at group end
    parallel_ios: int = 0
    blocks: int = 0
    ctx_blocks: int = 0
    msg_blocks: int = 0
    net_items: int = 0
    net_events: int = 0
    h_in: int = 0
    h_out: int = 0
    compute_s: float = 0.0          #: critical path (max over real procs)
    compute_sum_s: float = 0.0      #: summed callback wall time
    critical_real: int = 0
    round_wall_s: float = 0.0       #: measured wall time of the whole round
    drift: bool = False             #: a model_drift event flagged this round
    per_real_wall: dict[int, float] = field(default_factory=dict)
    per_real_ctx: dict[int, int] = field(default_factory=dict)
    per_real_msg: dict[int, int] = field(default_factory=dict)
    per_real_net: dict[int, int] = field(default_factory=dict)
    width_hist: list[int] = field(default_factory=list)
    predicted_ios: float | None = None
    io_lo: float | None = None
    io_hi: float | None = None

    @property
    def mean_width(self) -> float:
        if self.width_hist and sum(self.width_hist):
            ops = sum(self.width_hist)
            return sum(w * c for w, c in enumerate(self.width_hist)) / ops
        return self.blocks / self.parallel_ios if self.parallel_ios else 0.0

    @property
    def io_ok(self) -> bool:
        """Within the Theorem 2/3 envelope (vacuously true when unpredicted)."""
        if self.io_lo is None or self.io_hi is None:
            return True
        return self.io_lo <= self.parallel_ios <= self.io_hi


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_events` extracted from one run's trace."""

    engine: str = "?"
    program: str = "?"
    balanced: bool = False
    machine: dict[str, Any] = field(default_factory=dict)
    envelope_c: float = 8.0
    rows: list[SuperstepAgg] = field(default_factory=list)
    setup_events: int = 0           #: events before the first superstep_begin
    total_events: int = 0
    #: run_end's whole-run counters (None for truncated traces)
    total_parallel_ios: int | None = None
    run_supersteps: int | None = None
    #: real processor -> OS worker, from worker-tagged events
    real_worker: dict[int, int] = field(default_factory=dict)
    #: real processor -> node address, from node-tagged events (tcp runs)
    real_node: dict[int, str] = field(default_factory=dict)
    #: out-of-core telemetry (arena_grow / prefetch events)
    arena_grows: int = 0
    arena_resident_peak: int = 0
    arena_spill_peak: int = 0
    arena_backend: str | None = None
    prefetch_submitted: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    #: model_drift events the streaming conformance monitor emitted
    drift_count: int = 0
    #: the tuned-profile announcement make_engine emitted before run_begin
    #: (config/machine/rationale/fingerprint), None for untuned runs
    tuned: dict[str, Any] | None = None

    # -- verdicts -------------------------------------------------------------

    @property
    def is_em(self) -> bool:
        return self.engine in _EM_ENGINES

    def violations(self) -> list[SuperstepAgg]:
        return [r for r in self.rows if not r.io_ok]

    @property
    def ok(self) -> bool:
        return not self.violations()

    # -- modeled times --------------------------------------------------------

    def _io_time(self, row: SuperstepAgg) -> float:
        from repro.pdm.io_stats import DiskServiceModel

        B = int(self.machine.get("B", 64))
        return row.parallel_ios * DiskServiceModel().parallel_io_time(B)

    def _net_time(self, row: SuperstepAgg) -> float:
        # modeled at g seconds per cross-processor item, normalized so the
        # column is comparable across traces: g defaults to 1 cost unit,
        # which is not seconds — report item count * 1e-6 s/item equivalent
        return row.net_items * 1e-6

    # -- critical path --------------------------------------------------------

    def lane_label(self, real: int) -> str:
        """``rN`` for real processor N, ``rN/wM`` when worker-tagged,
        plus ``@host:port`` when the worker ran on a remote node."""
        w = self.real_worker.get(real)
        base = f"r{real}" if w is None else f"r{real}/w{w}"
        node = self.real_node.get(real)
        return base if node is None else f"{base}@{node}"

    def lane_seconds(self, row: SuperstepAgg) -> dict[int, float]:
        """Per-real-processor lane time for one superstep group.

        Measured compute wall time plus modeled I/O time (the lane's
        context+message blocks at full-D parallelism) plus modeled network
        time — the same attribution the aggregate columns use, resolved
        per lane so stragglers are visible.
        """
        from repro.pdm.io_stats import DiskServiceModel

        unit = DiskServiceModel().parallel_io_time(int(self.machine.get("B") or 64))
        D = max(1, int(self.machine.get("D") or 1))
        reals = (
            set(row.per_real_wall)
            | set(row.per_real_ctx)
            | set(row.per_real_msg)
            | set(row.per_real_net)
        )
        lanes: dict[int, float] = {}
        for real in sorted(reals):
            blocks = row.per_real_ctx.get(real, 0) + row.per_real_msg.get(real, 0)
            lanes[real] = (
                row.per_real_wall.get(real, 0.0)
                + (blocks / D) * unit
                + row.per_real_net.get(real, 0) * 1e-6
            )
        return lanes

    def critical_path(self, top: int = 5) -> dict[str, Any]:
        """Comm/comp/I/O attribution, stragglers, and top-K slowest rounds.

        The totals tie out bit-identically to the run's ``IOStats``: the
        per-superstep ``parallel_ios`` counters plus the setup/teardown
        I/O issued outside superstep groups sum to ``run_end``'s
        whole-run counter.
        """
        rows: list[dict[str, Any]] = []
        for r in self.rows:
            lanes = self.lane_seconds(r)
            if lanes:
                crit_real = max(lanes.items(), key=lambda kv: kv[1])[0]
                crit_s = lanes[crit_real]
                mean = sum(lanes.values()) / len(lanes)
                straggler = crit_s / mean if mean > 0 else 1.0
            else:
                crit_real, crit_s, straggler = 0, 0.0, 1.0
            rows.append(
                {
                    "round": r.round,
                    "superstep": r.superstep,
                    "parallel_ios": r.parallel_ios,
                    "comp_s": r.compute_s,
                    "io_s": self._io_time(r),
                    "comm_s": self._net_time(r),
                    "wall_s": r.round_wall_s,
                    "critical_real": crit_real,
                    "critical_lane": self.lane_label(crit_real),
                    "critical_lane_s": crit_s,
                    "straggler": straggler,
                    "lanes": {self.lane_label(k): v for k, v in lanes.items()},
                    "drift": r.drift,
                }
            )
        slowest = sorted(
            rows,
            key=lambda d: (d["wall_s"] or d["critical_lane_s"], d["parallel_ios"]),
            reverse=True,
        )[: max(0, top)]
        superstep_ios = sum(r.parallel_ios for r in self.rows)
        total = self.total_parallel_ios
        lane_totals: dict[int, dict[str, Any]] = {}

        def _lane_total(real: int) -> dict[str, Any]:
            return lane_totals.setdefault(
                real,
                {"comp_s": 0.0, "ctx_blocks": 0, "msg_blocks": 0, "net_items": 0},
            )

        for r in self.rows:
            for real, wall in r.per_real_wall.items():
                _lane_total(real)["comp_s"] += wall
            for real, blk in r.per_real_ctx.items():
                _lane_total(real)["ctx_blocks"] += blk
            for real, blk in r.per_real_msg.items():
                _lane_total(real)["msg_blocks"] += blk
            for real, items in r.per_real_net.items():
                _lane_total(real)["net_items"] += items
        return {
            "rows": rows,
            "slowest": [d["round"] for d in slowest],
            "lanes": {self.lane_label(k): v for k, v in sorted(lane_totals.items())},
            "totals": {
                "superstep_parallel_ios": superstep_ios,
                "setup_parallel_ios": (
                    None if total is None else total - superstep_ios
                ),
                "run_parallel_ios": total,
            },
            "drift_count": self.drift_count,
        }

    def render_critical_path(self, top: int = 5) -> str:
        cp = self.critical_path(top=top)
        head = (
            f"critical path: engine={self.engine} program={self.program} "
            f"({len(self.rows)} superstep group(s))"
        )
        rows = []
        for d in cp["rows"]:
            rows.append(
                [
                    d["round"],
                    d["parallel_ios"],
                    f"{d['comp_s'] * 1e3:.2f}",
                    f"{d['io_s'] * 1e3:.1f}",
                    f"{d['comm_s'] * 1e3:.2f}",
                    f"{d['wall_s'] * 1e3:.1f}",
                    d["critical_lane"],
                    f"{d['straggler']:.2f}x",
                    "DRIFT" if d["drift"] else "",
                ]
            )
        table = format_table(
            "per-superstep comm/comp/I/O attribution (modeled io*, measured comp/wall)",
            ["round", "par-I/Os", "comp ms", "io ms*", "comm ms", "wall ms",
             "crit lane", "strag", "drift"],
            rows,
        )
        lane_rows = [
            [label, f"{lt['comp_s'] * 1e3:.2f}", lt["ctx_blocks"],
             lt["msg_blocks"], lt["net_items"]]
            for label, lt in cp["lanes"].items()
        ]
        lanes_table = format_table(
            "per-lane totals (rN = real processor, wM = OS worker, "
            "@host:port = node)",
            ["lane", "comp ms", "ctx blk", "msg blk", "net items"],
            lane_rows,
        )
        foot = []
        if cp["slowest"]:
            foot.append(
                "top-%d slowest rounds (by measured wall): %s"
                % (len(cp["slowest"]),
                   ", ".join(str(r) for r in cp["slowest"]))
            )
        t = cp["totals"]
        if t["run_parallel_ios"] is not None:
            foot.append(
                f"totals: {t['superstep_parallel_ios']} parallel I/Os in "
                f"supersteps + {t['setup_parallel_ios']} in setup/teardown "
                f"= {t['run_parallel_ios']} (IOStats run total)"
            )
        else:
            foot.append(
                f"totals: {t['superstep_parallel_ios']} parallel I/Os in "
                "supersteps (truncated trace: no run_end counter)"
            )
        if cp["drift_count"]:
            foot.append(
                f"model drift: {cp['drift_count']} superstep(s) exceeded the "
                "Theorem 2/3 parallel-I/O budget during the run"
            )
        foot.append(
            "* io/comm modeled (DiskServiceModel / 1e-6 s per item); "
            "comp and wall are measured"
        )
        return head + "\n\n" + table + "\n" + lanes_table + "\n" + "\n".join(foot)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "program": self.program,
            "balanced": self.balanced,
            "machine": self.machine,
            "envelope_c": self.envelope_c,
            "ok": self.ok,
            "violations": len(self.violations()),
            "total_parallel_ios": self.total_parallel_ios,
            "drift_count": self.drift_count,
            "tuned": self.tuned,
            "real_worker": {str(k): v for k, v in sorted(self.real_worker.items())},
            "real_node": {str(k): v for k, v in sorted(self.real_node.items())},
            "arena": {
                "grows": self.arena_grows,
                "resident_peak_nbytes": self.arena_resident_peak,
                "spill_peak_nbytes": self.arena_spill_peak,
                "backend": self.arena_backend,
            },
            "prefetch": {
                "submitted": self.prefetch_submitted,
                "hits": self.prefetch_hits,
                "misses": self.prefetch_misses,
            },
            "critical_path": self.critical_path(),
            "supersteps": [
                {
                    "round": r.round,
                    "superstep": r.superstep,
                    "parallel_ios": r.parallel_ios,
                    "blocks": r.blocks,
                    "ctx_blocks": r.ctx_blocks,
                    "msg_blocks": r.msg_blocks,
                    "net_items": r.net_items,
                    "compute_s": r.compute_s,
                    "critical_real": r.critical_real,
                    "mean_width": r.mean_width,
                    "predicted_ios": r.predicted_ios,
                    "io_lo": r.io_lo,
                    "io_hi": r.io_hi,
                    "io_ok": r.io_ok,
                }
                for r in self.rows
            ],
        }

    def render(self) -> str:
        mach = self.machine
        head = (
            f"trace analysis: engine={self.engine} program={self.program} "
            f"balanced={self.balanced}\n"
            f"machine: N={mach.get('N')} v={mach.get('v')} p={mach.get('p')} "
            f"D={mach.get('D')} B={mach.get('B')} M={mach.get('M')}\n"
            f"{len(self.rows)} superstep group(s), {self.total_events} events "
            f"({self.setup_events} before the first superstep)"
        )
        rows = []
        for r in self.rows:
            rows.append(
                [
                    r.round,
                    r.parallel_ios,
                    r.ctx_blocks,
                    r.msg_blocks,
                    f"{r.mean_width:.2f}",
                    f"{r.compute_s * 1e3:.2f}",
                    f"{self._io_time(r) * 1e3:.1f}",
                    r.net_items,
                    f"r{r.critical_real}",
                    "-" if r.predicted_ios is None else f"{r.predicted_ios:.0f}",
                    "ok" if r.io_ok else "VIOLATED",
                ]
            )
        table = format_table(
            "per-superstep aggregation (I/O counts sum over real processors)",
            [
                "round",
                "par-I/Os",
                "ctx blk",
                "msg blk",
                "width",
                "comp ms",
                "io ms*",
                "net items",
                "crit",
                "pred I/O",
                "envelope",
            ],
            rows,
        )
        total_ios = sum(r.parallel_ios for r in self.rows)
        total_ctx = sum(r.ctx_blocks for r in self.rows)
        total_msg = sum(r.msg_blocks for r in self.rows)
        foot = [
            f"totals: {total_ios} parallel I/Os "
            f"({total_ctx} context blocks, {total_msg} message blocks), "
            f"{sum(r.net_items for r in self.rows)} network items",
            "* modeled on 1998-class disks (DiskServiceModel); compute is measured",
        ]
        if self.arena_grows:
            foot.append(
                f"out-of-core: {self.arena_grows} arena grow(s) "
                f"[{self.arena_backend or 'ram'}], resident peak "
                f"{self.arena_resident_peak / 1e6:.1f} MB, spill peak "
                f"{self.arena_spill_peak / 1e6:.1f} MB"
            )
        if self.prefetch_submitted:
            foot.append(
                f"prefetch: {self.prefetch_submitted} submitted, "
                f"{self.prefetch_hits} hit(s), {self.prefetch_misses} miss(es)"
            )
        if self.drift_count:
            foot.append(
                f"model drift: {self.drift_count} live budget violation(s) "
                "flagged by the streaming conformance monitor"
            )
        if self.tuned is not None:
            knobs = " ".join(
                f"{k}={v}" for k, v in sorted(self.tuned["config"].items())
            )
            fp = self.tuned["fingerprint"]
            foot.append(
                "tuned profile applied"
                + (f" [{fp[:12]}]" if fp else "")
                + (f": {knobs}" if knobs else "")
            )
            for line in self.tuned["rationale"]:
                foot.append(f"  - {line}")
        if self.is_em:
            nviol = len(self.violations())
            foot.append(
                f"Theorem 2/3 per-superstep I/O envelope (c={self.envelope_c:g}): "
                + ("all supersteps within envelope" if self.ok else f"{nviol} VIOLATED")
            )
        else:
            foot.append(
                f"engine {self.engine!r} issues no PDM I/O — envelope check skipped"
            )
        return head + "\n\n" + table + "\n" + "\n".join(foot)


def _machine_from_run_begin(ev: dict[str, Any]) -> dict[str, Any]:
    return {k: ev.get(k) for k in ("N", "v", "p", "D", "B", "M")}


def analyze_events(
    events: list[dict[str, Any]], envelope_c: float = 8.0
) -> TraceAnalysis:
    """Aggregate recorder *events* (see :mod:`repro.obs.trace`) per superstep."""
    out = TraceAnalysis(envelope_c=envelope_c, total_events=len(events))
    cur: SuperstepAgg | None = None
    seen_first = False
    for ev in events:
        kind = ev.get("kind")
        if kind == "run_begin":
            out.engine = str(ev.get("engine", "?"))
            out.program = str(ev.get("program", "?"))
            out.balanced = bool(ev.get("balanced", False))
            out.machine = _machine_from_run_begin(ev)
        elif kind == "superstep_begin":
            seen_first = True
            cur = SuperstepAgg(
                round=int(ev.get("round", len(out.rows))),
                superstep=int(ev.get("superstep", len(out.rows))),
            )
        elif kind == "superstep_end":
            if cur is None:
                # end without begin: synthesize a group so nothing is lost
                cur = SuperstepAgg(
                    round=int(ev.get("round", len(out.rows))),
                    superstep=int(ev.get("superstep", len(out.rows))),
                )
            cur.superstep = int(ev.get("superstep", cur.superstep))
            cur.parallel_ios = int(ev.get("parallel_ios", 0) or 0)
            cur.blocks = int(ev.get("blocks", 0) or 0)
            cur.h_in = int(ev.get("h_in", 0) or 0)
            cur.h_out = int(ev.get("h_out", 0) or 0)
            cur.round_wall_s = float(ev.get("wall_s", 0.0) or 0.0)
            wh = ev.get("width_hist")
            if isinstance(wh, list):
                cur.width_hist = [int(x) for x in wh]
            if cur.per_real_wall:
                cur.critical_real = max(
                    cur.per_real_wall.items(), key=lambda kv: kv[1]
                )[0]
                cur.compute_s = cur.per_real_wall[cur.critical_real]
            out.rows.append(cur)
            cur = None
        elif kind == "run_end":
            out.total_parallel_ios = int(ev.get("parallel_ios", 0) or 0)
            out.run_supersteps = int(ev.get("supersteps", 0) or 0)
        elif kind == "tuned_config":
            out.tuned = {
                "config": dict(ev.get("config", {}) or {}),
                "machine": dict(ev.get("machine", {}) or {}),
                "rationale": [str(x) for x in (ev.get("rationale", []) or [])],
                "fingerprint": str(ev.get("fingerprint", "") or ""),
            }
            if not seen_first:
                out.setup_events += 1
        elif kind == "model_drift":
            # emitted in-stream by the conformance monitor, sequenced just
            # after the superstep_end it reacted to
            out.drift_count += 1
            if out.rows:
                out.rows[-1].drift = True
        elif kind == "arena_grow":
            out.arena_grows += 1
            out.arena_resident_peak = max(
                out.arena_resident_peak, int(ev.get("resident_nbytes", 0) or 0)
            )
            out.arena_spill_peak = max(
                out.arena_spill_peak, int(ev.get("spill_nbytes", 0) or 0)
            )
            backend = ev.get("backend")
            if backend:
                out.arena_backend = str(backend)
        elif kind == "prefetch":
            out.prefetch_submitted += int(ev.get("submitted", 0) or 0)
            out.prefetch_hits += int(ev.get("hits", 0) or 0)
            out.prefetch_misses += int(ev.get("misses", 0) or 0)
        elif cur is not None:
            real = int(ev.get("real", ev.get("src_real", 0)) or 0)
            worker = ev.get("worker")
            if worker is not None:
                out.real_worker[real] = int(worker)
            node = ev.get("node")
            if node is not None:
                out.real_node[real] = str(node)
            if kind in ("context_read", "context_write"):
                blocks = int(ev.get("blocks", 0) or 0)
                cur.ctx_blocks += blocks
                cur.per_real_ctx[real] = cur.per_real_ctx.get(real, 0) + blocks
            elif kind in ("message_read", "message_write"):
                blocks = int(ev.get("blocks", 0) or 0)
                cur.msg_blocks += blocks
                cur.per_real_msg[real] = cur.per_real_msg.get(real, 0) + blocks
            elif kind == "network_transfer":
                items = int(ev.get("items", 0) or 0)
                cur.net_items += items
                cur.net_events += 1
                cur.per_real_net[real] = cur.per_real_net.get(real, 0) + items
            elif kind == "compute_round":
                wall = float(ev.get("wall_s", 0.0) or 0.0)
                cur.per_real_wall[real] = cur.per_real_wall.get(real, 0.0) + wall
                cur.compute_sum_s += wall
        elif not seen_first:
            out.setup_events += 1
    _attach_predictions(out)
    return out


def _attach_predictions(out: TraceAnalysis) -> None:
    """Per-superstep Theorem 2/3 envelopes, when the trace names an EM run."""
    if not out.is_em:
        return
    mach = out.machine
    if not all(isinstance(mach.get(k), int) for k in ("N", "v", "p", "D", "B")):
        return
    from repro.cgm.config import MachineConfig
    from repro.obs.costcheck import theorem3_predicted_ios

    try:
        cfg = MachineConfig(
            N=mach["N"], v=mach["v"], p=mach["p"], D=mach["D"], B=mach["B"],
            M=mach.get("M"),
        )
    except Exception:
        return  # malformed/hand-edited trace header: report without envelopes
    # per-round prediction, summed over the p real processors because the
    # superstep_end counters aggregate every processor's disk array
    pred = theorem3_predicted_ios(cfg, 1, out.balanced) * cfg.p
    for row in out.rows:
        row.predicted_ios = pred
        row.io_lo = pred / out.envelope_c
        row.io_hi = pred * out.envelope_c


def analyze_file(path: str, envelope_c: float = 8.0) -> TraceAnalysis:
    """Analyze a ``--trace`` JSON-lines file (jsonl format, not chrome)."""
    from repro.obs.trace import read_jsonl

    try:
        events = read_jsonl(path)
    except Exception as exc:
        raise ValueError(f"{path}: not a readable JSON-lines trace: {exc}") from exc
    if events and not any(isinstance(e, dict) and "kind" in e for e in events):
        raise ValueError(
            f"{path}: no recorder events found — is this a chrome-format "
            "trace? analyze needs the jsonl format (--trace-format jsonl)"
        )
    return analyze_events([e for e in events if isinstance(e, dict)], envelope_c)
