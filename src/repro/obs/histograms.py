"""Per-disk utilization and parallel-I/O width histograms.

Observation 2 of the paper claims the staggered message matrix plus the
consecutive context format keep every parallel I/O *fully D-parallel*.
:class:`repro.pdm.io_stats.IOStats` now counts, for each parallel I/O,
how many distinct disks it touched (the *width*) and how many blocks each
disk serviced; this module turns those counters into the quantities the
benchmarks and cost cross-checks assert on:

* the **width histogram** — ``width_counts[w]`` parallel I/Os touched
  exactly ``w`` disks; full D-parallelism means the mass sits at ``w=D``;
* the **per-disk histogram** — blocks serviced per disk; a balanced
  striping keeps ``max - min`` within a few partial stripes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pdm.io_stats import IOStats


@dataclass(frozen=True)
class DiskHistograms:
    """Digest of one :class:`IOStats`' disk-level behaviour."""

    D: int
    per_disk_blocks: list[int] = field(default_factory=list)
    width_counts: list[int] = field(default_factory=list)  #: index = width

    @classmethod
    def from_stats(cls, stats: IOStats, D: int | None = None) -> "DiskHistograms":
        d = D if D is not None else (stats.D or len(stats.per_disk_blocks) or 1)
        per_disk = list(stats.per_disk_blocks) or [0] * d
        widths = list(stats.width_histogram) or [0] * (d + 1)
        if len(widths) < d + 1:
            widths.extend([0] * (d + 1 - len(widths)))
        return cls(d, per_disk, widths)

    # -- width (parallelism) -------------------------------------------------

    @property
    def total_ops(self) -> int:
        return sum(self.width_counts)

    @property
    def full_width_ops(self) -> int:
        """Parallel I/Os that touched all D disks."""
        return self.width_counts[self.D] if self.D < len(self.width_counts) else 0

    @property
    def full_width_fraction(self) -> float:
        ops = self.total_ops
        return self.full_width_ops / ops if ops else 1.0

    @property
    def mean_width(self) -> float:
        ops = self.total_ops
        if not ops:
            return float(self.D)
        return sum(w * c for w, c in enumerate(self.width_counts)) / ops

    # -- per-disk balance ----------------------------------------------------

    @property
    def min_max_blocks(self) -> tuple[int, int]:
        return min(self.per_disk_blocks), max(self.per_disk_blocks)

    @property
    def imbalance(self) -> float:
        """max/mean blocks per disk — 1.0 is perfect striping."""
        mean = sum(self.per_disk_blocks) / len(self.per_disk_blocks)
        return max(self.per_disk_blocks) / mean if mean else 1.0

    # -- rendering -----------------------------------------------------------

    def render(self, bar_width: int = 40) -> str:
        """ASCII rendering for the CLI and benchmark tables."""
        lines = [f"parallel-I/O width histogram (D={self.D}):"]
        peak = max(self.width_counts) if any(self.width_counts) else 1
        for w in range(1, len(self.width_counts)):
            c = self.width_counts[w]
            bar = "#" * max(1 if c else 0, round(bar_width * c / peak))
            lines.append(f"  width {w:>2}: {c:>8}  {bar}")
        lines.append(
            f"  full-width fraction: {self.full_width_fraction:.1%}"
            f"  (mean width {self.mean_width:.2f})"
        )
        lines.append("blocks serviced per disk:")
        peak = max(self.per_disk_blocks) if any(self.per_disk_blocks) else 1
        for d, c in enumerate(self.per_disk_blocks):
            bar = "#" * max(1 if c else 0, round(bar_width * c / peak))
            lines.append(f"  disk {d:>3}: {c:>8}  {bar}")
        lo, hi = self.min_max_blocks
        lines.append(f"  balance: min {lo}, max {hi} (imbalance {self.imbalance:.3f})")
        return "\n".join(lines)
