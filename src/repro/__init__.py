"""repro — EM-CGM: I/O-efficient external-memory algorithms by simulating
coarse grained parallel algorithms.

Reproduction of Dehne, Dittrich, Hutchinson, Maheshwari, *"Reducing I/O
Complexity by Simulating Coarse Grained Parallel Algorithms"* (IPPS 1999).

Quickstart::

    import numpy as np
    from repro import MachineConfig, em_sort

    data = np.random.default_rng(0).integers(0, 2**40, 1 << 16)
    cfg = MachineConfig(N=data.size, v=8, D=2, B=256)
    result = em_sort(data, cfg)
    assert np.array_equal(result.values, np.sort(data))
    print(result.report.summary())   # parallel I/O count, rounds, ...

The layers, bottom-up:

* :mod:`repro.pdm` — the Parallel Disk Model substrate (simulated disks,
  parallel-I/O accounting, LRU paging baseline);
* :mod:`repro.cgm` — the CGM machine model and program API;
* :mod:`repro.core` — the paper's contribution: BalancedRouting and the
  deterministic sequential/parallel EM simulation engines;
* :mod:`repro.algorithms` — the CGM algorithm library of Figure 5
  (sorting, permutation, transpose; geometry/GIS; graphs);
* :mod:`repro.em` — the user-facing EM API plus classical PDM baselines;
* :mod:`repro.bsp` — BSP/BSP* cost models and the Section 5 conversions;
* :mod:`repro.cache` — the Section 5 cache-memory extension.
"""

from repro.cgm import (
    CGMProgram,
    Context,
    InMemoryEngine,
    MachineConfig,
    Message,
    RoundEnv,
    RunResult,
)
from repro.core import ParEMEngine, SeqEMEngine, VMEngine
from repro.em.runner import em_permute, em_run, em_sort, em_transpose

__version__ = "1.0.0"

__all__ = [
    "CGMProgram",
    "Context",
    "InMemoryEngine",
    "MachineConfig",
    "Message",
    "RoundEnv",
    "RunResult",
    "ParEMEngine",
    "SeqEMEngine",
    "VMEngine",
    "em_permute",
    "em_run",
    "em_sort",
    "em_transpose",
    "__version__",
]
