#!/usr/bin/env python
"""Job-service soak: hammer a live ``repro serve`` with a mixed batch.

Submits ``--jobs`` specs (default 20) over HTTP in two waves — a unique
wave of mixed ops, sizes, tenants and priorities, then a duplicate wave
resubmitting earlier specs under a different tenant — and asserts the
service-level metrics are non-degenerate:

* every submission was accepted and finished ``done``;
* every duplicate was answered from the result cache (hits > 0, and the
  duplicate wave returned 200/hit immediately, not 202);
* the queue actually backed up at some point (max sampled depth > 0),
  i.e. the soak exercised queueing, not just a fast pass-through.

Run against an external server with ``--url``; with no URL the script
starts an in-process server on a private port and tears it down after.
Exit code 0 on success, 1 on any degenerate metric, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
import urllib.error
import urllib.request


def _wave(count: int, offset: int = 0) -> list[dict]:
    ops = ("sort", "permute", "transpose")
    return [
        {
            "op": ops[i % len(ops)],
            "n": 4096 << (i % 3),
            "seed": i // 3,
            "machine": {"v": 8, "D": 2, "B": 64},
            "tenant": f"soak{i % 3}",
            "priority": i % 4,
        }
        for i in range(offset, offset + count)
    ]


def _post_json(url: str, doc: dict) -> tuple[int, dict, dict]:
    req = urllib.request.Request(
        url,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read().decode() or "{}")


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read().decode())


def _scrape(url: str) -> str:
    with urllib.request.urlopen(f"{url}/metrics", timeout=30) as resp:
        return resp.read().decode()


def _metric(text: str, name: str) -> float:
    total = 0.0
    for m in re.finditer(
        rf"^{re.escape(name)}(?:{{[^}}]*}})? ([0-9.eE+-]+)$", text, re.M
    ):
        total += float(m.group(1))
    return total


def _submit(url: str, spec: dict) -> tuple[int, dict, dict]:
    status, headers, body = _post_json(f"{url}/jobs", spec)
    while status == 429:  # backpressure is legitimate under load
        time.sleep(1.0)
        status, headers, body = _post_json(f"{url}/jobs", spec)
    return status, headers, body


def _await_terminal(url: str, ids: list[str], deadline: float) -> dict[str, str]:
    pending, states = set(ids), {}
    while pending and time.monotonic() < deadline:
        for job_id in sorted(pending):
            doc = _get_json(f"{url}/jobs/{job_id}")
            if doc["state"] in ("done", "failed", "cancelled"):
                states[job_id] = doc["state"]
                pending.discard(job_id)
        if pending:
            time.sleep(0.25)
    for job_id in pending:
        states[job_id] = "stuck"
    return states


def soak(url: str, jobs: int, timeout_s: float) -> int:
    deadline = time.monotonic() + timeout_s
    n_dup = max(1, jobs // 3)
    unique = _wave(jobs - n_dup)
    failures: list[str] = []

    # wave 1: unique specs, sampling queue depth between submissions
    ids, max_depth = [], 0.0
    for spec in unique:
        status, _, body = _submit(url, spec)
        if status not in (200, 202):
            print(f"error: submission refused ({status}): {body}", file=sys.stderr)
            return 1
        ids.append(body["id"])
        max_depth = max(max_depth, _metric(_scrape(url), "repro_service_queue_depth"))
    states = _await_terminal(url, ids, deadline)
    not_done = {j: s for j, s in states.items() if s != "done"}

    # wave 2: duplicates under a fresh tenant — the fingerprint ignores
    # scheduling identity, so every one must be served from the cache
    stale_dups = 0
    for spec in unique[:n_dup]:
        status, headers, body = _submit(url, {**spec, "tenant": "dup"})
        if status != 200 or headers.get("X-Repro-Cache") != "hit":
            stale_dups += 1
            if body.get("id"):
                states.update(_await_terminal(url, [body["id"]], deadline))

    metrics = _scrape(url)
    submitted = _metric(metrics, "repro_service_jobs_submitted_total")
    hits = _metric(metrics, "repro_service_cache_hits_total")
    misses = _metric(metrics, "repro_service_cache_misses_total")

    print(
        f"soak: {jobs} submitted ({len(unique)} unique + {n_dup} dup), "
        f"bad states={len(not_done)}, stale dups={stale_dups}; "
        f"cache hits={hits:.0f} misses={misses:.0f}; "
        f"max queue depth={max_depth:.0f}"
    )
    if not_done:
        failures.append(f"jobs not done: {not_done}")
    if stale_dups:
        failures.append(f"{stale_dups} duplicate(s) missed the result cache")
    if submitted < jobs:
        failures.append(f"submitted counter degenerate: {submitted} < {jobs}")
    if hits < n_dup:
        failures.append(f"cache hit counter degenerate: {hits} < {n_dup}")
    if misses <= 0:
        failures.append("cache miss counter degenerate: nothing was computed")
    if max_depth <= 0:
        failures.append("queue depth never rose above zero: soak did not queue")
    for f in failures:
        print(f"error: {f}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="running server (default: start one in-process)")
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument("--pool", type=int, default=2,
                        help="worker pool size for the in-process server")
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--state-dir", default="soak_state")
    args = parser.parse_args(argv)
    if args.jobs < 3:
        parser.error("--jobs must be >= 3 (the batch needs a duplicate wave)")

    if args.url:
        return soak(args.url.rstrip("/"), args.jobs, args.timeout)

    from repro.service.server import JobServer, ServiceCore

    core = ServiceCore(state_dir=args.state_dir, pool_size=args.pool)
    server = JobServer(core).start()
    print(f"soaking in-process server at {server.url}")
    try:
        return soak(server.url, args.jobs, args.timeout)
    finally:
        core.drain(timeout=30.0)
        server.close()


if __name__ == "__main__":
    sys.exit(main())
